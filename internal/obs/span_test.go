package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	h := Traceparent(tid, sid)
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("malformed traceparent %q", h)
	}
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("ParseTraceparent(%q) = %v %v %v, want %v %v true", h, gotT, gotS, ok, tid, sid)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := Traceparent(NewTraceID(), NewSpanID())
	for name, h := range map[string]string{
		"empty":         "",
		"short":         valid[:54],
		"version-ff":    "ff" + valid[2:],
		"zero-trace-id": "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"bad-hex":       "00-zz0af7651916cd43dd8448eb211c80319-00f067aa0ba902b7-01",
		"no-dash":       strings.Replace(valid, "-", "_", 1),
	} {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, h)
		}
	}
	// Trailing version-specific fields after the flags are tolerated.
	if _, _, ok := ParseTraceparent(valid + "-extrafield"); !ok {
		t.Error("traceparent with trailing fields rejected")
	}
}

func TestTraceRecNilSafe(t *testing.T) {
	var r *TraceRec
	if r.ID() != "" || r.Endpoint() != "" {
		t.Error("nil TraceRec has identity")
	}
	if !r.Now().IsZero() {
		t.Error("nil TraceRec.Now() is not the zero time")
	}
	r.Record("x", time.Now())
	r.RecordDetail("x", time.Now(), "d")
	r.RecordN("x", time.Now(), 3)
	r.VisitSpans(func(string, time.Duration, time.Duration, string, int64) {
		t.Error("nil TraceRec visited a span")
	})
	if ctx := ContextWithTrace(context.Background(), nil); TraceFromContext(ctx) != nil {
		t.Error("nil rec stored in context")
	}
	var f *Flight
	if f.Start("ep", "", time.Now()) != nil {
		t.Error("nil Flight started a record")
	}
	f.Finish(nil, 200)
	if _, ok := f.Get(strings.Repeat("a", 32)); ok {
		t.Error("nil Flight returned a trace")
	}
	if f.Recent(10) != nil || f.Slowest() != nil || f.Len() != 0 {
		t.Error("nil Flight has state")
	}
}

func TestRecordVisitAndOverflow(t *testing.T) {
	f := NewFlight(4, 2)
	base := time.Now()
	r := f.Start("/v1/run", "", base)
	for i := 0; i < maxTraceSpans+5; i++ {
		r.RecordN("phase", base, int64(i))
	}
	var n int
	r.VisitSpans(func(phase string, start, dur time.Duration, detail string, cnt int64) {
		if phase != "phase" || cnt != int64(n) {
			t.Errorf("span %d: phase=%q n=%d", n, phase, cnt)
		}
		n++
	})
	if n != maxTraceSpans {
		t.Fatalf("visited %d spans, want %d", n, maxTraceSpans)
	}
	f.Finish(r, 200)
	rt, ok := f.Get(r.ID())
	if !ok {
		t.Fatal("finished trace not retrievable")
	}
	if len(rt.Spans) != maxTraceSpans || rt.DroppedSpans != 5 {
		t.Fatalf("snapshot has %d spans, %d dropped; want %d and 5",
			len(rt.Spans), rt.DroppedSpans, maxTraceSpans)
	}
}

func TestFlightInboundTraceparent(t *testing.T) {
	f := NewFlight(4, 2)
	tid, sid := NewTraceID(), NewSpanID()
	r := f.Start("/v1/plan", Traceparent(tid, sid), time.Now())
	if r.ID() != tid.String() {
		t.Fatalf("inbound trace ID not adopted: got %s want %s", r.ID(), tid)
	}
	f.Finish(r, 200)
	rt, ok := f.Get(tid.String())
	if !ok {
		t.Fatal("trace not retrievable by inbound ID")
	}
	if rt.ParentSpan != sid.String() || rt.Endpoint != "/v1/plan" || rt.Status != 200 {
		t.Fatalf("snapshot = %+v", rt)
	}

	// A garbage traceparent falls back to a fresh ID.
	r2 := f.Start("/v1/plan", "not-a-traceparent", time.Now())
	if len(r2.ID()) != 32 || r2.ID() == tid.String() {
		t.Fatalf("fallback ID %q", r2.ID())
	}
	f.Finish(r2, 200)
}

func TestFlightRingEvictionAndSlowestRetention(t *testing.T) {
	f := NewFlight(2, 1)

	// A very slow request, then enough fast ones to evict it from the ring.
	slow := f.Start("/v1/run", "", time.Now().Add(-10*time.Second))
	slowID := slow.ID()
	f.Finish(slow, 200)
	var fastIDs []string
	for i := 0; i < 4; i++ {
		r := f.Start("/v1/run", "", time.Now().Add(-time.Millisecond))
		fastIDs = append(fastIDs, r.ID())
		f.Finish(r, 200)
	}

	// The slow trace left the ring but the slowest-per-endpoint list still
	// holds it.
	if _, ok := f.Get(slowID); !ok {
		t.Fatal("slowest trace evicted despite retention list")
	}
	sl := f.Slowest()["/v1/run"]
	if len(sl) != 1 || sl[0].TraceID != slowID {
		t.Fatalf("Slowest() = %+v, want the slow trace", sl)
	}

	// The ring holds the two newest fast traces, newest first; older fast
	// traces are fully released.
	rec := f.Recent(0)
	if len(rec) != 2 || rec[0].TraceID != fastIDs[3] || rec[1].TraceID != fastIDs[2] {
		t.Fatalf("Recent() = %+v, want fast traces 3,2", rec)
	}
	if _, ok := f.Get(fastIDs[0]); ok {
		t.Error("fully evicted trace still retrievable")
	}
	if f.Len() != 2 {
		t.Errorf("Len() = %d, want 2", f.Len())
	}
}

func TestFlightConcurrentRecording(t *testing.T) {
	f := NewFlight(8, 2)
	r := f.Start("/v1/batch", "", time.Now())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				t0 := r.Now()
				r.RecordN("exec.mc", t0, 100)
			}
		}()
	}
	wg.Wait()
	f.Finish(r, 200)
	rt, ok := f.Get(r.ID())
	if !ok {
		t.Fatal("trace not retrievable")
	}
	if len(rt.Spans) != 32 {
		t.Fatalf("got %d spans, want 32", len(rt.Spans))
	}
	for _, sp := range rt.Spans {
		if sp.Phase != "exec.mc" || sp.N != 100 {
			t.Fatalf("bad span %+v", sp)
		}
	}
}
