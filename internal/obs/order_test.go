package obs_test

import (
	"testing"

	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/obs"
	"andorsched/internal/power"
	"andorsched/internal/sim"
	"andorsched/internal/workload"
)

// runTraced executes one deterministic on-line run of the synthetic
// application with a collector and metrics attached.
func runTraced(t *testing.T, scheme core.Scheme) (*core.RunResult, []obs.Event, obs.Snapshot) {
	t.Helper()
	plan, err := core.NewPlan(workload.Synthetic(), 2, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	met := obs.NewMetrics()
	res, err := plan.Run(core.RunConfig{
		Scheme:   scheme,
		Deadline: plan.CTWorst / 0.6,
		Sampler:  exectime.NewSampler(exectime.NewSource(11)),
		Tracer:   col,
		Metrics:  met,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("RunResult.Metrics not attached")
	}
	return res, col.Events(), *res.Metrics
}

// TestTracerEventOrdering asserts the hook-ordering contract: events from a
// deterministic run arrive in nondecreasing timestamp order, and
// dispatch/finish pairs balance per task node with no processor ever
// finishing a task it did not dispatch.
func TestTracerEventOrdering(t *testing.T) {
	for _, scheme := range []core.Scheme{core.GSS, core.AS, core.ASP} {
		t.Run(scheme.String(), func(t *testing.T) {
			res, events, _ := runTraced(t, scheme)
			if len(events) == 0 {
				t.Fatal("no events recorded")
			}

			last := events[0].Time
			balance := map[int]int{}   // node -> dispatches - finishes
			inFlight := map[int]int{}  // proc -> currently dispatched tasks
			sections := 0
			dispatches, finishes, orResolves := 0, 0, 0
			for i, e := range events {
				if e.Time < last {
					t.Fatalf("event %d (%s) at t=%g before previous t=%g", i, e.Kind, e.Time, last)
				}
				last = e.Time
				switch e.Kind {
				case obs.EvTaskDispatch:
					dispatches++
					balance[e.Node]++
					inFlight[e.Proc]++
					if inFlight[e.Proc] > 1 {
						t.Fatalf("P%d dispatched a second task while one is in flight", e.Proc)
					}
				case obs.EvTaskFinish:
					finishes++
					balance[e.Node]--
					inFlight[e.Proc]--
					if inFlight[e.Proc] < 0 {
						t.Fatalf("P%d finished a task it never dispatched", e.Proc)
					}
					if balance[e.Node] < 0 {
						t.Fatalf("node %d finished more often than dispatched", e.Node)
					}
				case obs.EvSectionBegin:
					sections++
				case obs.EvSectionEnd:
					sections--
					if sections < 0 {
						t.Fatal("section ended before beginning")
					}
				case obs.EvORResolve:
					orResolves++
				}
			}
			if dispatches == 0 || dispatches != finishes {
				t.Errorf("dispatch/finish unbalanced: %d vs %d", dispatches, finishes)
			}
			for node, n := range balance {
				if n != 0 {
					t.Errorf("node %d: %+d unmatched dispatches", node, n)
				}
			}
			if sections != 0 {
				t.Errorf("%d sections never ended", sections)
			}
			if orResolves != len(res.Path) {
				t.Errorf("OR resolutions traced %d, want %d", orResolves, len(res.Path))
			}
		})
	}
}

// TestMetricsMatchResult cross-checks the metrics registry against the
// run's own aggregates.
func TestMetricsMatchResult(t *testing.T) {
	res, events, snap := runTraced(t, core.GSS)

	changes, _ := snap.Counter(sim.MetricSpeedChanges)
	if int(changes) != res.SpeedChanges {
		t.Errorf("metric speed changes %d != result %d", changes, res.SpeedChanges)
	}
	changeEvents := 0
	taskDispatches := 0
	for _, e := range events {
		switch e.Kind {
		case obs.EvSpeedChange:
			changeEvents++
		case obs.EvTaskDispatch:
			taskDispatches++
		}
	}
	if changeEvents != res.SpeedChanges {
		t.Errorf("speed-change events %d != result %d", changeEvents, res.SpeedChanges)
	}
	tasks, _ := snap.Counter(sim.MetricTasks)
	dummies, _ := snap.Counter(sim.MetricDummies)
	if int(tasks+dummies) != taskDispatches {
		t.Errorf("counter tasks+dummies = %d, dispatch events = %d", tasks+dummies, taskDispatches)
	}
	if tasks == 0 {
		t.Error("no tasks counted")
	}
	// Per-processor gauges must sum to the result's totals.
	var busy float64
	for i := 0; i < 2; i++ {
		v, ok := snap.Gauge(sim.MetricProcBusy(i))
		if !ok {
			t.Fatalf("missing busy gauge for P%d", i)
		}
		busy += v
	}
	if diff := busy - res.BusyTime; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("busy gauges sum %g != result %g", busy, res.BusyTime)
	}
	// The dynamic scheme must have recorded slack-share observations.
	h, ok := snap.Histogram(core.MetricSlackShare)
	if !ok || h.Count == 0 {
		t.Errorf("slack-share histogram missing or empty: %+v", h)
	}
	if secs, _ := snap.Counter(core.MetricSections); secs == 0 {
		t.Error("no sections counted")
	}
}

// TestNilTracerUnchanged proves decoration does not perturb the simulation:
// the same seeded run with and without observability produces identical
// energy, finish time and speed changes.
func TestNilTracerUnchanged(t *testing.T) {
	plan, err := core.NewPlan(workload.Synthetic(), 2, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	run := func(tr obs.Tracer, m *obs.Metrics) *core.RunResult {
		res, err := plan.Run(core.RunConfig{
			Scheme:   core.AS,
			Deadline: plan.CTWorst / 0.5,
			Sampler:  exectime.NewSampler(exectime.NewSource(5)),
			Tracer:   tr,
			Metrics:  m,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil, nil)
	traced := run(obs.NewCollector(), obs.NewMetrics())
	if plain.Energy() != traced.Energy() || plain.Finish != traced.Finish ||
		plain.SpeedChanges != traced.SpeedChanges {
		t.Errorf("observability changed the run: %+v vs %+v", plain, traced)
	}
}

// TestStreamMetrics checks the stream driver's pass-through wiring.
func TestStreamMetrics(t *testing.T) {
	plan, err := core.NewPlan(workload.Synthetic(), 2, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	met := obs.NewMetrics()
	res, err := plan.RunStream(core.StreamConfig{
		Scheme: core.GSS, Period: plan.CTWorst / 0.6, Frames: 10,
		Sampler: exectime.NewSampler(exectime.NewSource(2)),
		Tracer:  col, Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("StreamResult.Metrics not attached")
	}
	changes, _ := res.Metrics.Counter(sim.MetricSpeedChanges)
	if int(changes) != res.SpeedChanges {
		t.Errorf("stream metric speed changes %d != result %d", changes, res.SpeedChanges)
	}
	if col.Len() == 0 {
		t.Error("stream produced no events")
	}
}
