package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if m.Counter("c") != c {
		t.Error("counter lookup is not idempotent")
	}

	g := m.Gauge("g")
	g.Set(1.5)
	g.Add(2.5)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %g, want 4", got)
	}

	h := m.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %g, want 556.5", h.Sum())
	}

	snap := m.Snapshot()
	hs, ok := snap.Histogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// ≤1: {0.5, 1}; ≤10: {5}; ≤100: {50}; overflow: {500}.
	want := []int64{2, 1, 1, 1}
	for i, n := range hs.Counts {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	if hs.Mean() != 556.5/5 {
		t.Errorf("mean = %g", hs.Mean())
	}
	if v, ok := snap.Counter("c"); !ok || v != 5 {
		t.Errorf("snapshot counter = %d,%v", v, ok)
	}
	if v, ok := snap.Gauge("g"); !ok || v != 4 {
		t.Errorf("snapshot gauge = %g,%v", v, ok)
	}
	if _, ok := snap.Counter("nope"); ok {
		t.Error("lookup of unknown counter succeeded")
	}
}

func TestSnapshotSorted(t *testing.T) {
	m := NewMetrics()
	for _, n := range []string{"z", "a", "m"} {
		m.Counter(n).Inc()
		m.Gauge(n).Set(1)
		m.Histogram(n, []float64{1}).Observe(0)
	}
	s := m.Snapshot()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name >= s.Counters[i].Name {
			t.Errorf("counters not sorted: %v", s.Counters)
		}
	}
	for i := 1; i < len(s.Histograms); i++ {
		if s.Histograms[i-1].Name >= s.Histograms[i].Name {
			t.Errorf("histograms not sorted")
		}
	}
}

// TestMetricsConcurrent hammers one registry from many goroutines; run with
// -race (part of the tier-1 verify recipe) to prove the shared-registry
// paths the parallel experiment runner uses are data-race-free.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := m.Counter("shared.counter")
			g := m.Gauge("shared.gauge")
			h := m.Histogram("shared.hist", DefaultTimeBuckets)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(1e-4)
				if i%100 == 0 {
					m.Snapshot() // concurrent reads must be safe too
				}
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if v, _ := s.Counter("shared.counter"); v != workers*iters {
		t.Errorf("counter = %d, want %d", v, workers*iters)
	}
	if v, _ := s.Gauge("shared.gauge"); v != workers*iters*0.5 {
		t.Errorf("gauge = %g, want %g", v, workers*iters*0.5)
	}
	if h, _ := s.Histogram("shared.hist"); h.Count != workers*iters {
		t.Errorf("hist count = %d, want %d", h.Count, workers*iters)
	}
}

func TestSummary(t *testing.T) {
	m := NewMetrics()
	m.Counter("runs").Add(3)
	m.Gauge("busy_seconds").Set(0.25)
	m.Histogram("exec", DefaultTimeBuckets).Observe(2e-3)
	out := m.Snapshot().Summary()
	for _, want := range []string{"counters:", "runs", "gauges:", "busy_seconds",
		"histogram exec: count 1", "≤1ms:0", "≤10ms:1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Event(Event{Kind: EvTaskDispatch, Time: 1})
	c.Event(Event{Kind: EvTaskFinish, Time: 2})
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	ev := c.Events()
	ev[0].Time = 99 // the returned slice is a copy
	if c.Events()[0].Time != 1 {
		t.Error("Events() aliases internal storage")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("reset did not clear")
	}
}

func TestMultiTracer(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	mt := MultiTracer(nil, a, nil, b)
	mt.Event(Event{Kind: EvIdle})
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("fan-out failed: %d, %d", a.Len(), b.Len())
	}
	if MultiTracer(nil, nil) != nil {
		t.Error("all-nil MultiTracer should be nil")
	}
	if MultiTracer(a) != Tracer(a) {
		t.Error("single tracer should pass through")
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "unknown" || s == "" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}
