package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4), the lingua franca of scrape-based
// monitoring. Metric names are sanitized to the Prometheus charset
// ([a-zA-Z0-9_:]): the registry's dotted names become underscore-separated
// ones, e.g. "serve.http.requests" → "serve_http_requests". Counters map
// to counter, gauges to gauge, and histograms to the cumulative
// Prometheus histogram convention (le-labelled buckets, _sum, _count,
// +Inf bucket).
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, c := range s.Counters {
		name := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		// The registry's buckets are disjoint; Prometheus buckets are
		// cumulative.
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum), name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry name onto the Prometheus metric charset.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects (no exponent for
// integral values is not required; %g is accepted; infinities spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}
