package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4), the lingua franca of scrape-based
// monitoring. Metric names are sanitized to the Prometheus charset
// ([a-zA-Z0-9_:]): the registry's dotted names become underscore-separated
// ones, e.g. "serve.http.requests" → "serve_http_requests". Counters map
// to counter, gauges to gauge, and histograms to the cumulative
// Prometheus histogram convention (le-labelled buckets, _sum, _count,
// +Inf bucket). Series of one labeled family share a single TYPE line and
// carry their label on every sample. Exemplars are NOT emitted — they are
// invalid in format 0.0.4; scrape with an OpenMetrics Accept header (see
// WriteOpenMetrics) to receive them.
func WritePrometheus(w io.Writer, s Snapshot) error {
	return writeExposition(w, s, false)
}

// WriteOpenMetrics renders a metrics snapshot in the OpenMetrics 1.0 text
// format (content type "application/openmetrics-text; version=1.0.0").
// It differs from the 0.0.4 exposition in three ways: counter samples take
// the mandatory _total suffix, histogram +Inf buckets carry the retained
// trace-ID exemplar ("# {trace_id=\"...\"} value timestamp"), and the body
// ends with the mandatory "# EOF" terminator.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	if err := writeExposition(w, s, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func writeExposition(w io.Writer, s Snapshot, openMetrics bool) error {
	for _, c := range s.Counters {
		name := promName(c.Name)
		suffix := ""
		if openMetrics {
			suffix = "_total"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", name, name, suffix, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(g.Value)); err != nil {
			return err
		}
	}
	// Histograms are sorted by full key, so the series of one labeled
	// family are contiguous: emit the TYPE line when the family changes.
	lastFam := ""
	for _, h := range s.Histograms {
		fam := promName(h.FamilyName())
		if fam != lastFam {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fam); err != nil {
				return err
			}
			lastFam = fam
		}
		// A label pair on a labeled series precedes the le label.
		label := ""
		if h.Family != "" {
			label = promName(h.LabelKey) + "=" + fmt.Sprintf("%q", h.LabelVal) + ","
		}
		// The registry's buckets are disjoint; Prometheus buckets are
		// cumulative.
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", fam, label, promFloat(bound), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Counts)-1]
		exemplar := ""
		if openMetrics && h.Exemplar != nil {
			exemplar = fmt.Sprintf(" # {trace_id=%q} %s %s",
				h.Exemplar.TraceID, promFloat(h.Exemplar.Value),
				promFloat(float64(h.Exemplar.Time.UnixNano())/1e9))
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d%s\n", fam, label, cum, exemplar); err != nil {
			return err
		}
		sumLabel := ""
		if label != "" {
			sumLabel = "{" + strings.TrimSuffix(label, ",") + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", fam, sumLabel, promFloat(h.Sum), fam, sumLabel, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry name onto the Prometheus metric charset.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects (no exponent for
// integral values is not required; %g is accepted; infinities spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}
