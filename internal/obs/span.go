package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// This file is the request-scoped half of the observability layer: where
// obs.Event traces one *simulation* at sub-microsecond granularity, a
// TraceRec traces one *request* through the serving pipeline as a small
// set of named phase spans (decode, admission, cache, compile, queue
// wait, execution, encode). The design constraints match the rest of the
// package: nil-gated (a nil *TraceRec no-ops every method, so the
// tracing-off path costs one pointer comparison), allocation-conscious
// (spans land in a fixed-capacity slice owned by a pooled record — the
// steady state allocates only the trace-ID hex string), and safe for the
// worker-pool execution model (span slots are reserved with an atomic
// counter, so concurrent batch chunks may record into one request's
// trace).

// TraceID is a W3C Trace Context trace-id: 16 random bytes, rendered as
// 32 lowercase hex digits.
type TraceID [16]byte

// SpanID is a W3C Trace Context parent-id: 8 bytes.
type SpanID [8]byte

// String renders the trace ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	var b [32]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// String renders the span ID as 16 lowercase hex digits.
func (id SpanID) String() string {
	var b [16]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// NewTraceID returns a random, non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	hi, lo := rand.Uint64(), rand.Uint64()
	for i := 0; i < 8; i++ {
		id[i] = byte(hi >> (8 * i))
		id[8+i] = byte(lo >> (8 * i))
	}
	if id == (TraceID{}) {
		id[0] = 1 // the all-zero ID is invalid per the W3C spec
	}
	return id
}

// NewSpanID returns a random, non-zero span ID.
func NewSpanID() SpanID {
	var id SpanID
	v := rand.Uint64()
	for i := 0; i < 8; i++ {
		id[i] = byte(v >> (8 * i))
	}
	if id == (SpanID{}) {
		id[0] = 1
	}
	return id
}

// Traceparent renders a W3C traceparent header value for the given IDs
// with the sampled flag set.
func Traceparent(tid TraceID, sid SpanID) string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], tid[:])
	b[35] = '-'
	hex.Encode(b[36:52], sid[:])
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex>-<16 hex>-<2 hex>"). It accepts any version except the
// reserved "ff" and ignores trailing version-specific fields. The boolean
// reports whether the header carried a usable (non-zero) trace ID.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	var tid TraceID
	var sid SpanID
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, sid, false
	}
	if h[0] == 'f' && h[1] == 'f' {
		return tid, sid, false
	}
	if !hexDecode(tid[:], h[3:35]) || !hexDecode(sid[:], h[36:52]) {
		return TraceID{}, SpanID{}, false
	}
	if tid == (TraceID{}) {
		return TraceID{}, SpanID{}, false
	}
	return tid, sid, true
}

// hexDecode decodes src (lowercase or uppercase hex) into dst without
// allocating. len(src) must be 2*len(dst).
func hexDecode(dst []byte, src string) bool {
	for i := range dst {
		hi, ok1 := hexVal(src[2*i])
		lo, ok2 := hexVal(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// maxTraceSpans bounds the spans one request may record. Requests that
// exceed it (a huge batch resolving hundreds of plans) keep the first
// maxTraceSpans spans and count the rest in DroppedSpans — recording
// stays O(1) memory per request regardless of request size.
const maxTraceSpans = 64

// span is the internal storage form of one phase span: offsets from the
// record's start, so a record carries one time.Time and the spans stay
// plain integers.
type span struct {
	phase  string
	start  time.Duration
	end    time.Duration
	detail string
	n      int64
}

// TraceRec records one request's phase spans. Obtain one from
// Flight.Start, record with Record/RecordDetail/RecordN, and hand it back
// with Flight.Finish. All methods are nil-safe: a nil *TraceRec (tracing
// disabled) turns every call into a no-op, so producers need no
// conditionals beyond the ones the compiler elides.
//
// Span slots are reserved with an atomic counter, so goroutines working
// on behalf of one request (the per-worker chunks of a batch) may record
// concurrently. Readers only see a record after Finish hands it to the
// flight recorder, whose mutex orders the handoff.
type TraceRec struct {
	id       TraceID
	idStr    string
	parent   SpanID
	hasPar   bool
	endpoint string
	status   int
	start    time.Time
	dur      time.Duration

	n       atomic.Int32
	dropped atomic.Int32
	spans   []span // fixed capacity maxTraceSpans

	// mark is the cursor for Mark/MarkDetail: the end offset of the last
	// cursor-recorded phase (initially 0 = the request's arrival). It is
	// only touched from the request's serial control flow — concurrent
	// recorders (batch chunks, pool workers) must use the explicit
	// Record* forms instead.
	mark time.Duration

	refs int // retention count; guarded by the owning Flight's mutex
}

// ID returns the 32-hex-digit trace ID, or "" on a nil record.
func (r *TraceRec) ID() string {
	if r == nil {
		return ""
	}
	return r.idStr
}

// Endpoint returns the endpoint label the record was started with.
func (r *TraceRec) Endpoint() string {
	if r == nil {
		return ""
	}
	return r.endpoint
}

// StartTime returns the request's arrival time (zero on nil). It serves
// as a clock-read-free "now" for completion-path consumers whose
// precision needs are coarse (exemplar timestamps).
func (r *TraceRec) StartTime() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Now returns the current time when the record is live and the zero time
// when it is nil — the capture half of the span idiom:
//
//	t0 := rec.Now()
//	... the phase ...
//	rec.Record(phase, t0)
//
// With tracing off both calls collapse to nil checks.
func (r *TraceRec) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// Record appends a span for phase running from start to now.
func (r *TraceRec) Record(phase string, start time.Time) {
	if r == nil {
		return
	}
	r.record(phase, start, "", 0)
}

// RecordDetail is Record with a short annotation (use constant strings —
// "hit", "miss" — to keep the hot path allocation-free).
func (r *TraceRec) RecordDetail(phase string, start time.Time, detail string) {
	if r == nil {
		return
	}
	r.record(phase, start, detail, 0)
}

// RecordN is Record with a count (e.g. Monte-Carlo runs in a chunk).
func (r *TraceRec) RecordN(phase string, start time.Time, n int64) {
	if r == nil {
		return
	}
	r.record(phase, start, "", n)
}

// RecordSpan appends a span with both endpoints supplied by the caller —
// zero clock reads, for producers that already hold the timestamps (the
// pool worker's queue-wait span reuses the pickup stamp it takes anyway).
func (r *TraceRec) RecordSpan(phase string, start, end time.Time) {
	if r == nil {
		return
	}
	r.recordOffsets(phase, start.Sub(r.start), end.Sub(r.start), "", 0)
}

// Mark records phase as running from the previous mark (initially the
// request's arrival) to now, and advances the mark — one clock read per
// contiguous serial phase instead of two. Not safe for concurrent
// recorders; see the mark field.
func (r *TraceRec) Mark(phase string) {
	if r == nil {
		return
	}
	end := time.Since(r.start)
	start := r.mark
	r.mark = end
	r.recordOffsets(phase, start, end, "", 0)
}

// MarkDetail is Mark with a short annotation (use constant strings).
func (r *TraceRec) MarkDetail(phase, detail string) {
	if r == nil {
		return
	}
	end := time.Since(r.start)
	start := r.mark
	r.mark = end
	r.recordOffsets(phase, start, end, detail, 0)
}

// SinceStart returns the current offset from the request's arrival (zero
// on nil) — the capture half of the offset-based span idiom, pairing
// with RecordOffset/RecordOffsetN. It costs a single monotonic clock
// read, where Now costs a wall+monotonic pair.
func (r *TraceRec) SinceStart() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// RecordOffset appends a span running from the startOff offset (from
// SinceStart) to now.
func (r *TraceRec) RecordOffset(phase string, startOff time.Duration) {
	if r == nil {
		return
	}
	r.recordOffsets(phase, startOff, time.Since(r.start), "", 0)
}

// RecordOffsetN is RecordOffset with a count.
func (r *TraceRec) RecordOffsetN(phase string, startOff time.Duration, n int64) {
	if r == nil {
		return
	}
	r.recordOffsets(phase, startOff, time.Since(r.start), "", n)
}

func (r *TraceRec) record(phase string, start time.Time, detail string, n int64) {
	// time.Since over the record's monotonic start is the cheap half of
	// the clock (one nanotime read, no wall-clock VDSO call); with several
	// spans per request this is the difference between tracing costing a
	// fraction of a microsecond and costing several.
	r.recordOffsets(phase, start.Sub(r.start), time.Since(r.start), detail, n)
}

func (r *TraceRec) recordOffsets(phase string, start, end time.Duration, detail string, n int64) {
	i := int(r.n.Add(1)) - 1
	if i >= len(r.spans) {
		r.dropped.Add(1)
		return
	}
	s := &r.spans[i]
	s.phase = phase
	s.start = start
	s.end = end
	s.detail = detail
	s.n = n
}

// VisitSpans calls fn for every recorded span in recording order. It is
// meant for the completion path (phase-latency metrics): the caller must
// still own the record (i.e. call it before Flight.Finish).
func (r *TraceRec) VisitSpans(fn func(phase string, start, dur time.Duration, detail string, n int64)) {
	if r == nil {
		return
	}
	n := int(r.n.Load())
	if n > len(r.spans) {
		n = len(r.spans)
	}
	for i := 0; i < n; i++ {
		s := &r.spans[i]
		fn(s.phase, s.start, s.end-s.start, s.detail, s.n)
	}
}

// reset prepares a pooled record for reuse. Only the slots the previous
// request actually recorded are cleared (dropping their string references
// for the GC): every reader — VisitSpans, the flight recorder's snapshot
// — stops at n, so stale bytes beyond it are unreachable, and clearing
// all 64 slots would put a ~3.6KB write-barriered memclr on every
// request's critical path for nothing.
func (r *TraceRec) reset() {
	r.id = TraceID{}
	r.idStr = ""
	r.parent = SpanID{}
	r.hasPar = false
	r.endpoint = ""
	r.status = 0
	r.start = time.Time{}
	r.dur = 0
	r.mark = 0
	used := int(r.n.Load())
	if used > len(r.spans) {
		used = len(r.spans)
	}
	for i := 0; i < used; i++ {
		r.spans[i] = span{}
	}
	r.n.Store(0)
	r.dropped.Store(0)
}

// PhaseSpan is the exported (snapshot) form of one phase span, in
// microseconds from the request's start — the same unit the Chrome trace
// export uses.
type PhaseSpan struct {
	Phase   string  `json:"phase"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	Detail  string  `json:"detail,omitempty"`
	N       int64   `json:"n,omitempty"`
}

// RequestTrace is an immutable snapshot of one completed request trace,
// safe to hold after the flight recorder recycles the underlying record.
type RequestTrace struct {
	TraceID      string      `json:"trace_id"`
	ParentSpan   string      `json:"parent_span,omitempty"`
	Endpoint     string      `json:"endpoint"`
	Status       int         `json:"status"`
	Start        time.Time   `json:"start"`
	DurationUS   float64     `json:"duration_us"`
	Spans        []PhaseSpan `json:"spans"`
	DroppedSpans int         `json:"dropped_spans,omitempty"`
}

// traceKey is the context key carrying a *TraceRec.
type traceKey struct{}

// ContextWithTrace returns a context carrying rec. A nil rec returns ctx
// unchanged.
func ContextWithTrace(ctx context.Context, rec *TraceRec) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, rec)
}

// TraceFromContext returns the context's trace record, or nil.
func TraceFromContext(ctx context.Context) *TraceRec {
	rec, _ := ctx.Value(traceKey{}).(*TraceRec)
	return rec
}
