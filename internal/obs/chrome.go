package obs

import (
	"encoding/json"
	"fmt"
)

// traceEvent is one Trace Event Format record, loadable by chrome://tracing
// and https://ui.perfetto.dev. Ph "X" is a complete slice, "i" an instant,
// "M" metadata. Timestamps and durations are microseconds.
type traceEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the Trace Event Format's JSON object form.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const tracePid = 0

// ChromeTrace renders a recorded event stream as Chrome trace_event JSON:
// one track (tid) per processor carrying task slices, power-management
// overhead slices, idle slices and speed-change instants, plus one extra
// track carrying program-section slices and OR-resolution instants. Open
// the result in chrome://tracing or Perfetto.
//
// Events must be the stream of one run in emission order (as recorded by a
// Collector). ChromeTrace returns an error when dispatch/finish or section
// begin/end events do not pair up.
func ChromeTrace(events []Event) ([]byte, error) {
	maxProc := 0
	for _, e := range events {
		if e.Proc > maxProc {
			maxProc = e.Proc
		}
	}
	secTid := maxProc + 1

	out := []traceEvent{{
		Name: "process_name", Ph: "M", Pid: tracePid, Tid: 0,
		Args: map[string]any{"name": "andorsched simulation"},
	}}
	for p := 0; p <= maxProc; p++ {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: p,
			Args: map[string]any{"name": fmt.Sprintf("P%d", p)},
		})
	}
	out = append(out, traceEvent{
		Name: "thread_name", Ph: "M", Pid: tracePid, Tid: secTid,
		Args: map[string]any{"name": "sections"},
	})

	// One task executes at a time per processor, so dispatches pair with
	// finishes FIFO per proc. Sections nest trivially (they never do in
	// practice, but a stack is cheap).
	pending := make(map[int][]Event) // proc -> queued dispatch events
	var sections []Event
	us := func(s float64) float64 { return s * 1e6 }

	for _, e := range events {
		switch e.Kind {
		case EvTaskDispatch:
			pending[e.Proc] = append(pending[e.Proc], e)
			if e.Value > 0 {
				out = append(out, traceEvent{
					Name: "dvs-overhead", Ph: "X",
					Ts: us(e.Time), Dur: us(e.Value),
					Pid: tracePid, Tid: e.Proc,
					Args: map[string]any{"overhead_us": us(e.Value)},
				})
			}
		case EvTaskFinish:
			q := pending[e.Proc]
			if len(q) == 0 {
				return nil, fmt.Errorf("obs: finish of task %d on P%d without a dispatch", e.Task, e.Proc)
			}
			d := q[0]
			pending[e.Proc] = q[1:]
			if d.Task != e.Task {
				return nil, fmt.Errorf("obs: P%d finished task %d but dispatched task %d first", e.Proc, e.Task, d.Task)
			}
			start := d.Time + d.Value // after power-management overheads
			out = append(out, traceEvent{
				Name: d.Name, Ph: "X",
				Ts: us(start), Dur: us(e.Time - start),
				Pid: tracePid, Tid: e.Proc,
				Args: map[string]any{"node": d.Node, "level": fmt.Sprintf("L%d", d.Level)},
			})
		case EvSpeedChange:
			out = append(out, traceEvent{
				Name: fmt.Sprintf("speed L%d→L%d", e.Prev, e.Level), Ph: "i",
				Ts: us(e.Time), Pid: tracePid, Tid: e.Proc, Scope: "t",
			})
		case EvIdle:
			out = append(out, traceEvent{
				Name: "(idle)", Ph: "X",
				Ts: us(e.Time - e.Value), Dur: us(e.Value),
				Pid: tracePid, Tid: e.Proc,
			})
		case EvSectionBegin:
			sections = append(sections, e)
		case EvSectionEnd:
			if len(sections) == 0 {
				return nil, fmt.Errorf("obs: section %d ended without beginning", e.Node)
			}
			b := sections[len(sections)-1]
			sections = sections[:len(sections)-1]
			if b.Node != e.Node {
				return nil, fmt.Errorf("obs: section %d ended inside section %d", e.Node, b.Node)
			}
			out = append(out, traceEvent{
				Name: fmt.Sprintf("S%d", e.Node), Ph: "X",
				Ts: us(b.Time), Dur: us(e.Time - b.Time),
				Pid: tracePid, Tid: secTid,
			})
		case EvORResolve:
			out = append(out, traceEvent{
				Name: fmt.Sprintf("or:%s→%d", e.Name, e.Branch), Ph: "i",
				Ts: us(e.Time), Pid: tracePid, Tid: secTid, Scope: "p",
			})
		}
		// EvSlackShare/EvSlackSteal carry no track position; the NDJSON
		// exporter preserves them.
	}
	for proc, q := range pending {
		if len(q) > 0 {
			return nil, fmt.Errorf("obs: P%d has %d dispatched tasks without a finish", proc, len(q))
		}
	}
	if len(sections) > 0 {
		return nil, fmt.Errorf("obs: %d sections never ended", len(sections))
	}
	return json.MarshalIndent(traceFile{TraceEvents: out, DisplayTimeUnit: "ms"}, "", " ")
}

// ChromeTraceRequest renders one request trace from the flight recorder as
// Chrome trace_event JSON: a root slice covering the whole request plus one
// slice per phase span. Spans that overlap in time (concurrent batch chunks)
// are spread across additional tracks so every track holds disjoint slices;
// track assignment is first-fit in recording order, so the output is
// deterministic for a given trace.
func ChromeTraceRequest(rt RequestTrace) ([]byte, error) {
	out := []traceEvent{
		{
			Name: "process_name", Ph: "M", Pid: tracePid, Tid: 0,
			Args: map[string]any{"name": "andord request " + rt.TraceID},
		},
		{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: 0,
			Args: map[string]any{"name": "request"},
		},
	}
	rootArgs := map[string]any{"trace_id": rt.TraceID, "status": rt.Status}
	if rt.ParentSpan != "" {
		rootArgs["parent_span"] = rt.ParentSpan
	}
	if rt.DroppedSpans > 0 {
		rootArgs["dropped_spans"] = rt.DroppedSpans
	}
	out = append(out, traceEvent{
		Name: rt.Endpoint, Ph: "X", Ts: 0, Dur: rt.DurationUS,
		Pid: tracePid, Tid: 0, Args: rootArgs,
	})

	// trackEnd[i] is the end time of the last slice on phase track i
	// (tid i+1); a span lands on the first track it does not overlap.
	var trackEnd []float64
	for _, sp := range rt.Spans {
		tid := -1
		for i, end := range trackEnd {
			if sp.StartUS >= end {
				tid = i
				break
			}
		}
		if tid < 0 {
			tid = len(trackEnd)
			trackEnd = append(trackEnd, 0)
			name := "phases"
			if tid > 0 {
				name = fmt.Sprintf("phases-%d", tid+1)
			}
			out = append(out, traceEvent{
				Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tid + 1,
				Args: map[string]any{"name": name},
			})
		}
		trackEnd[tid] = sp.StartUS + sp.DurUS
		var args map[string]any
		if sp.Detail != "" || sp.N != 0 {
			args = make(map[string]any, 2)
			if sp.Detail != "" {
				args["detail"] = sp.Detail
			}
			if sp.N != 0 {
				args["n"] = sp.N
			}
		}
		out = append(out, traceEvent{
			Name: sp.Phase, Ph: "X", Ts: sp.StartUS, Dur: sp.DurUS,
			Pid: tracePid, Tid: tid + 1, Args: args,
		})
	}
	return json.MarshalIndent(traceFile{TraceEvents: out, DisplayTimeUnit: "ms"}, "", " ")
}
