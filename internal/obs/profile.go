package obs

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profile holds the standard profiling options a binary exposes as flags:
// CPU and heap profiles, a runtime execution trace, and an opt-in
// net/http/pprof endpoint for live inspection of long runs.
type Profile struct {
	// CPUFile receives a pprof CPU profile covering Start..Stop.
	CPUFile string
	// MemFile receives a pprof heap profile written at Stop (after a GC).
	MemFile string
	// TraceFile receives a runtime/trace execution trace covering
	// Start..Stop (open with `go tool trace`).
	TraceFile string
	// PprofAddr, if non-empty, serves the net/http/pprof handlers on this
	// address (e.g. "localhost:6060") until Stop.
	PprofAddr string
}

// RegisterFlags installs the profiling flags on fs. traceName names the
// execution-trace flag: most binaries use "trace", but cmd/andorsim uses
// "exectrace" because -trace is its (pre-existing) Gantt flag.
func (p *Profile) RegisterFlags(fs *flag.FlagSet, traceName string) {
	fs.StringVar(&p.CPUFile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&p.MemFile, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.StringVar(&p.TraceFile, traceName, "", "write a runtime execution trace to this file (go tool trace)")
	fs.StringVar(&p.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// Enabled reports whether any profiling option is set.
func (p Profile) Enabled() bool {
	return p.CPUFile != "" || p.MemFile != "" || p.TraceFile != "" || p.PprofAddr != ""
}

// Session is a running profiling session. Stop it exactly once.
type Session struct {
	p        Profile
	cpuFile  *os.File
	traceF   *os.File
	listener net.Listener
	// Addr is the pprof endpoint's bound address (useful with ":0"), empty
	// when no endpoint was requested.
	Addr string
}

// Start activates every configured profiling option and returns the
// session. On error, everything already started is stopped.
func (p Profile) Start() (*Session, error) {
	s := &Session{p: p}
	if p.CPUFile != "" {
		f, err := os.Create(p.CPUFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: start CPU profile: %w", err)
		}
		s.cpuFile = f
	}
	if p.TraceFile != "" {
		f, err := os.Create(p.TraceFile)
		if err != nil {
			s.Stop()
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			s.Stop()
			return nil, fmt.Errorf("obs: start execution trace: %w", err)
		}
		s.traceF = f
	}
	if p.PprofAddr != "" {
		ln, err := net.Listen("tcp", p.PprofAddr)
		if err != nil {
			s.Stop()
			return nil, fmt.Errorf("obs: pprof endpoint: %w", err)
		}
		s.listener = ln
		s.Addr = ln.Addr().String()
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		go http.Serve(ln, mux) //nolint:errcheck // ends when Stop closes the listener
	}
	return s, nil
}

// Stop ends the session: stops the CPU profile and execution trace, writes
// the heap profile, and shuts the pprof endpoint down. It returns the first
// error encountered.
func (s *Session) Stop() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
		s.cpuFile = nil
	}
	if s.traceF != nil {
		trace.Stop()
		keep(s.traceF.Close())
		s.traceF = nil
	}
	if s.p.MemFile != "" {
		f, err := os.Create(s.p.MemFile)
		if err != nil {
			keep(err)
		} else {
			runtime.GC() // materialize up-to-date allocation statistics
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
		s.p.MemFile = ""
	}
	if s.listener != nil {
		keep(s.listener.Close())
		s.listener = nil
	}
	return first
}
