package obs

import (
	"fmt"
	"strings"
)

// Summary renders the snapshot as an aligned, human-readable table:
// counters first, then gauges, then histograms with their bucket
// occupancies. Intended for terminal output (`andorsim -stats`) and debug
// logs.
func (s Snapshot) Summary() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-36s %12d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-36s %12.6g\n", g.Name, g.Value)
		}
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "histogram %s: count %d, sum %.6g, mean %.6g\n",
			h.Name, h.Count, h.Sum, h.Mean())
		if h.Count == 0 {
			continue
		}
		b.WriteString(" ")
		for i, n := range h.Counts {
			if i < len(h.Bounds) {
				fmt.Fprintf(&b, " ≤%s:%d", seconds(h.Bounds[i]), n)
			} else {
				fmt.Fprintf(&b, " >%s:%d", seconds(h.Bounds[len(h.Bounds)-1]), n)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// seconds formats a duration bound compactly (1µs, 100ms, 1s).
func seconds(v float64) string {
	switch {
	case v >= 1:
		return fmt.Sprintf("%gs", v)
	case v >= 1e-3:
		return fmt.Sprintf("%gms", v*1e3)
	case v >= 1e-6:
		return fmt.Sprintf("%gµs", v*1e6)
	default:
		return fmt.Sprintf("%gns", v*1e9)
	}
}
