package obs_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"andorsched/internal/obs"
	"andorsched/internal/power"
	"andorsched/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// levelHopPolicy forces deterministic speed changes so the trace contains
// dvs-overhead slices and speed-change instants.
type levelHopPolicy struct{ n int }

func (p levelHopPolicy) PickLevel(t *sim.Task, _ float64, _ int) int {
	return (t.Node * 3) % p.n
}

// twoProcRun executes a small deterministic diamond (A → B,C → D with an
// And join) on two processors and returns the recorded event stream.
func twoProcRun(t *testing.T) []obs.Event {
	t.Helper()
	plat := power.Transmeta5400()
	tasks := []*sim.Task{
		{Node: 0, Name: "A", WorkW: 6e6, WorkA: 5e6, Order: 0, LFT: 1, Succs: []int{1, 2}},
		{Node: 1, Name: "B", WorkW: 8e6, WorkA: 6e6, Order: 1, LFT: 1, Preds: []int{0}, Succs: []int{3}},
		{Node: 2, Name: "C", WorkW: 4e6, WorkA: 4e6, Order: 2, LFT: 1, Preds: []int{0}, Succs: []int{3}},
		{Node: 3, Name: "J", Dummy: true, Order: 3, Preds: []int{1, 2}, Succs: []int{4}},
		{Node: 4, Name: "D", WorkW: 5e6, WorkA: 2e6, Order: 4, LFT: 1, Preds: []int{3}},
	}
	col := obs.NewCollector()
	_, err := sim.Run(sim.Config{
		Platform:  plat,
		Overheads: power.DefaultOverheads(),
		Mode:      sim.ByOrder,
		Policy:    levelHopPolicy{plat.NumLevels()},
		Procs:     2,
		Tracer:    col,
	}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	return col.Events()
}

// TestChromeTraceGolden pins the exporter's exact output for a small
// two-processor run and validates it against the trace_event schema:
// required keys, known phases, and non-overlapping slices per track.
func TestChromeTraceGolden(t *testing.T) {
	data, err := obs.ChromeTrace(twoProcRun(t))
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_two_proc.json")
	if *update {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to regenerate)", err)
	}
	if string(data) != string(want) {
		t.Errorf("chrome trace differs from golden file %s (re-run with -update after intentional changes)\ngot:\n%s", golden, data)
	}

	validateChromeTrace(t, data, []string{"A", "B", "C", "J", "D"})
}

type chromeEv struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args"`
}

// validateChromeTrace checks trace_event schema validity: the JSON object
// form, known phase types, nonnegative durations, every expected task name
// present, and per-track slices that never overlap.
func validateChromeTrace(t *testing.T, data []byte, wantTasks []string) {
	t.Helper()
	var tf struct {
		TraceEvents []chromeEv `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	names := map[string]bool{}
	type track struct{ pid, tid int }
	slices := map[track][]chromeEv{}
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur < 0 {
				t.Errorf("slice %q has negative duration %g", e.Name, e.Dur)
			}
			slices[track{e.Pid, e.Tid}] = append(slices[track{e.Pid, e.Tid}], e)
			names[e.Name] = true
		case "i", "M":
			// instants and metadata carry no duration constraints
		default:
			t.Errorf("unknown phase %q on event %q", e.Ph, e.Name)
		}
		if e.Name == "" {
			t.Error("event with empty name")
		}
	}
	for _, task := range wantTasks {
		if !names[task] {
			t.Errorf("executed task %q missing from trace slices", task)
		}
	}
	const eps = 1e-6 // µs; slices may touch but not overlap
	for tr, evs := range slices {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
		for i := 1; i < len(evs); i++ {
			prevEnd := evs[i-1].Ts + evs[i-1].Dur
			if evs[i].Ts < prevEnd-eps {
				t.Errorf("track pid=%d tid=%d: slice %q@%g overlaps %q ending %g",
					tr.pid, tr.tid, evs[i].Name, evs[i].Ts, evs[i-1].Name, prevEnd)
			}
		}
	}
}

// TestChromeTraceUnbalanced ensures malformed streams are rejected rather
// than silently exported.
func TestChromeTraceUnbalanced(t *testing.T) {
	cases := [][]obs.Event{
		{{Kind: obs.EvTaskFinish, Proc: 0, Task: 1}},                              // finish without dispatch
		{{Kind: obs.EvTaskDispatch, Proc: 0, Task: 1, Name: "X"}},                 // dispatch without finish
		{{Kind: obs.EvSectionEnd, Node: 3}},                                       // end without begin
		{{Kind: obs.EvSectionBegin, Node: 1}},                                     // begin without end
		{{Kind: obs.EvTaskDispatch, Proc: 0, Task: 1}, {Kind: obs.EvTaskFinish, Proc: 0, Task: 2}}, // wrong pairing
	}
	for i, evs := range cases {
		if _, err := obs.ChromeTrace(evs); err == nil {
			t.Errorf("case %d: want error for unbalanced stream", i)
		}
	}
}
