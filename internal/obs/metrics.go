package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a registry of named instruments — counters, gauges and
// fixed-bucket histograms. Instrument lookup takes a lock; the returned
// instruments update with atomic operations, so producers should resolve
// their instruments once at run start and hold the pointers across the hot
// path. A registry may be shared by concurrent simulations; values then
// aggregate across them.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given bucket upper bounds (which must be sorted ascending) on first use.
// Later calls with the same name return the existing histogram regardless
// of the bounds argument.
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		m.histograms[name] = h
	}
	return h
}

// LabeledHistogram returns the histogram for one (name, label=value) series
// of a labeled family — e.g. serve.phase.latency_seconds{phase="exec"} —
// creating it on first use. Series of one family share the family name in
// the Prometheus exposition (one TYPE line, a label on every sample) but are
// otherwise independent instruments; resolve each series once and hold the
// pointer, exactly as with Histogram.
func (m *Metrics) LabeledHistogram(name, label, value string, bounds []float64) *Histogram {
	key := name + "{" + label + "=\"" + value + "\"}"
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[key]
	if !ok {
		h = newHistogram(bounds)
		h.family, h.labelKey, h.labelVal = name, label, value
		m.histograms[key] = h
	}
	return h
}

// Counter is a monotonically increasing integer instrument.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float instrument that can be set or accumulated.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates v into the gauge.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		val := math.Float64frombits(old) + v
		if g.bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts float observations into fixed buckets. Bucket i counts
// observations ≤ bounds[i]; one extra overflow bucket counts the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	sum    Gauge
	n      atomic.Int64

	// Labeled-family identity, set by LabeledHistogram ("" otherwise).
	family   string
	labelKey string
	labelVal string

	// One retained exemplar (OpenMetrics): the observation from the highest
	// bucket seen recently, linking the histogram to a concrete trace.
	// Stored by value so retention updates on the hot path do not allocate.
	// exState mirrors the retained exemplar's bucket and capture second as
	// (bucket+1)<<40 | unixSec (zero = none), so the steady-state path —
	// an observation that would not displace the exemplar — decides with
	// one atomic load instead of taking the mutex.
	exMu    sync.Mutex
	ex      Exemplar
	exOK    bool
	exState atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// exemplarTTL ages out a retained exemplar so a one-off historic outlier
// does not pin the histogram's exemplar forever.
const exemplarTTL = 60 * time.Second

// Exemplar links one concrete observation (and its trace ID) to a
// histogram, per the OpenMetrics exemplar model.
type Exemplar struct {
	// TraceID is the 32-hex-digit trace the observation came from.
	TraceID string
	// Value is the observed value; Time is when it was observed; Bucket is
	// the index of the disjoint bucket it landed in.
	Value  float64
	Time   time.Time
	Bucket int
}

// ObserveExemplar records one value and offers it as the histogram's
// exemplar. The exemplar is retained when it lands in a bucket strictly
// higher than the current one's (so the exemplar tracks the worst recent
// observation) or when the current one is older than a minute — so in the
// steady state, where observations land in or below the exemplar's
// bucket, the offer is declined by the lock-free exState check.
func (h *Histogram) ObserveExemplar(v float64, traceID string, now time.Time) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
	if traceID == "" {
		return
	}
	if st := h.exState.Load(); st != 0 {
		if i <= int(st>>40)-1 && now.Unix()-int64(st&(1<<40-1)) <= int64(exemplarTTL/time.Second) {
			return
		}
	}
	h.exMu.Lock()
	if !h.exOK || i > h.ex.Bucket || now.Sub(h.ex.Time) > exemplarTTL {
		h.ex = Exemplar{TraceID: traceID, Value: v, Time: now, Bucket: i}
		h.exOK = true
		h.exState.Store(uint64(i+1)<<40 | uint64(now.Unix())&(1<<40-1))
	}
	h.exMu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefaultTimeBuckets are exponential bucket bounds in seconds, suitable for
// the simulator's duration-valued histograms (task executions, idle
// intervals, slack allocations): 1µs … 1s, one decade per bucket.
var DefaultTimeBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// Snapshot is an immutable copy of a registry's state, taken at the end of
// a run and attached to run results.
type Snapshot struct {
	// Counters, Gauges and Histograms are sorted by name.
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistogramSnap
}

// CounterSnap is one counter's snapshot.
type CounterSnap struct {
	Name  string
	Value int64
}

// GaugeSnap is one gauge's snapshot.
type GaugeSnap struct {
	Name  string
	Value float64
}

// HistogramSnap is one histogram's snapshot. Counts[i] is the number of
// observations ≤ Bounds[i]; the final extra entry of Counts is the
// overflow bucket. A series of a labeled family carries the family name and
// its label pair; Name is then the full "family{label=\"value\"}" key.
type HistogramSnap struct {
	Name   string
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64

	Family   string // "" for unlabeled histograms
	LabelKey string
	LabelVal string
	Exemplar *Exemplar // nil when none retained
}

// FamilyName returns the metric-family name: Family for a labeled series,
// Name otherwise.
func (h HistogramSnap) FamilyName() string {
	if h.Family != "" {
		return h.Family
	}
	return h.Name
}

// Mean returns the mean observation, or 0 when empty.
func (h HistogramSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot copies the registry's current state.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s Snapshot
	for name, c := range m.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range m.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range m.histograms {
		hs := HistogramSnap{
			Name:     name,
			Bounds:   append([]float64(nil), h.bounds...),
			Counts:   make([]int64, len(h.counts)),
			Sum:      h.Sum(),
			Count:    h.Count(),
			Family:   h.family,
			LabelKey: h.labelKey,
			LabelVal: h.labelVal,
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		h.exMu.Lock()
		if h.exOK {
			ex := h.ex
			hs.Exemplar = &ex
		}
		h.exMu.Unlock()
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter looks up a counter value by name.
func (s Snapshot) Counter(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge looks up a gauge value by name.
func (s Snapshot) Gauge(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram looks up a histogram snapshot by name.
func (s Snapshot) Histogram(name string) (HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnap{}, false
}
