package obs

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestProfileRegisterFlags(t *testing.T) {
	var p Profile
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	p.RegisterFlags(fs, "trace")
	if err := fs.Parse([]string{"-cpuprofile", "cpu.out", "-memprofile", "mem.out",
		"-trace", "t.out", "-pprof", "localhost:0"}); err != nil {
		t.Fatal(err)
	}
	if p.CPUFile != "cpu.out" || p.MemFile != "mem.out" || p.TraceFile != "t.out" || p.PprofAddr != "localhost:0" {
		t.Errorf("flags not bound: %+v", p)
	}
	if !p.Enabled() {
		t.Error("Enabled() = false with every option set")
	}
	if (Profile{}).Enabled() {
		t.Error("zero Profile reports enabled")
	}
}

func TestProfileSessionWritesFiles(t *testing.T) {
	dir := t.TempDir()
	p := Profile{
		CPUFile:   filepath.Join(dir, "cpu.pprof"),
		MemFile:   filepath.Join(dir, "mem.pprof"),
		TraceFile: filepath.Join(dir, "exec.trace"),
	}
	sess, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Generate a little work so the profiles have content.
	x := 0.0
	for i := 0; i < 1e5; i++ {
		x += float64(i) * 1.5
	}
	_ = x
	if err := sess.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{p.CPUFile, p.MemFile, p.TraceFile} {
		st, err := os.Stat(f)
		if err != nil {
			t.Errorf("profile %s not written: %v", f, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
	if err := sess.Stop(); err != nil {
		t.Errorf("second Stop errored: %v", err)
	}
}

func TestProfilePprofEndpoint(t *testing.T) {
	// Skip gracefully where the sandbox forbids listening sockets.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	probe.Close()

	p := Profile{PprofAddr: "127.0.0.1:0"}
	sess, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Stop()
	if sess.Addr == "" {
		t.Fatal("no bound address reported")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", sess.Addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("pprof index: status %d, %d bytes", resp.StatusCode, len(body))
	}
}
