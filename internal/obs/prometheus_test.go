package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	m := NewMetrics()
	m.Counter("serve.http.requests").Add(7)
	m.Gauge("serve.queue.depth").Set(3)
	h := m.Histogram("serve.http.latency_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005) // ≤ 0.001
	h.Observe(0.005)  // ≤ 0.01
	h.Observe(5)      // overflow

	var b strings.Builder
	if err := WritePrometheus(&b, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE serve_http_requests counter\nserve_http_requests 7\n",
		"# TYPE serve_queue_depth gauge\nserve_queue_depth 3\n",
		"# TYPE serve_http_latency_seconds histogram\n",
		"serve_http_latency_seconds_bucket{le=\"0.001\"} 1\n",
		"serve_http_latency_seconds_bucket{le=\"0.01\"} 2\n",
		"serve_http_latency_seconds_bucket{le=\"+Inf\"} 3\n",
		"serve_http_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"serve.http.requests": "serve_http_requests",
		"core.or.resolves":    "core_or_resolves",
		"9lives":              "_9lives",
		"ok_name:x":           "ok_name:x",
		"sp ace-dash":         "sp_ace_dash",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
