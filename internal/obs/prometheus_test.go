package obs

import (
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	m := NewMetrics()
	m.Counter("serve.http.requests").Add(7)
	m.Gauge("serve.queue.depth").Set(3)
	h := m.Histogram("serve.http.latency_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005) // ≤ 0.001
	h.Observe(0.005)  // ≤ 0.01
	h.Observe(5)      // overflow

	var b strings.Builder
	if err := WritePrometheus(&b, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE serve_http_requests counter\nserve_http_requests 7\n",
		"# TYPE serve_queue_depth gauge\nserve_queue_depth 3\n",
		"# TYPE serve_http_latency_seconds histogram\n",
		"serve_http_latency_seconds_bucket{le=\"0.001\"} 1\n",
		"serve_http_latency_seconds_bucket{le=\"0.01\"} 2\n",
		"serve_http_latency_seconds_bucket{le=\"+Inf\"} 3\n",
		"serve_http_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusLabeledFamily(t *testing.T) {
	m := NewMetrics()
	now := time.Unix(1700000000, 0)
	hq := m.LabeledHistogram("serve.phase.latency_seconds", "phase", "queue", []float64{0.001, 0.01})
	hx := m.LabeledHistogram("serve.phase.latency_seconds", "phase", "exec", []float64{0.001, 0.01})
	hq.ObserveExemplar(0.0005, "aaaabbbbccccddddaaaabbbbccccdddd", now)
	hx.ObserveExemplar(5, "11112222333344441111222233334444", now)

	var b strings.Builder
	if err := WritePrometheus(&b, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n := strings.Count(out, "# TYPE serve_phase_latency_seconds histogram"); n != 1 {
		t.Errorf("want exactly one TYPE line for the labeled family, got %d:\n%s", n, out)
	}
	for _, want := range []string{
		`serve_phase_latency_seconds_bucket{phase="queue",le="0.001"} 1`,
		`serve_phase_latency_seconds_bucket{phase="exec",le="+Inf"} 1`,
		`serve_phase_latency_seconds_sum{phase="exec"} 5`,
		`serve_phase_latency_seconds_count{phase="queue"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Exemplars are invalid in text format 0.0.4 and must not leak into it.
	if strings.Contains(out, "# {") {
		t.Errorf("0.0.4 exposition carries an exemplar:\n%s", out)
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	m := NewMetrics()
	now := time.Unix(1700000000, 0)
	m.Counter("serve.http.requests").Add(7)
	h := m.LabeledHistogram("serve.phase.latency_seconds", "phase", "exec", []float64{0.001, 0.01})
	h.ObserveExemplar(5, "0af7651916cd43dd8448eb211c80319c", now)

	var b strings.Builder
	if err := WriteOpenMetrics(&b, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"serve_http_requests_total 7\n", // OpenMetrics counters take _total
		`serve_phase_latency_seconds_bucket{phase="exec",le="+Inf"} 1 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 5 1.7e+09`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics body does not end with # EOF:\n%s", out)
	}
}

func TestExemplarRetention(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01})
	t0 := time.Unix(1700000000, 0)
	h.ObserveExemplar(0.005, "mid", t0) // bucket 1
	h.ObserveExemplar(0.0005, "low", t0.Add(time.Second))
	if h.ex.TraceID != "mid" {
		t.Fatalf("lower-bucket observation displaced the exemplar: %+v", h.ex)
	}
	// A fresh exemplar declines same-bucket offers (the lock-free
	// steady-state path).
	h.ObserveExemplar(0.006, "mid2", t0.Add(2*time.Second))
	if h.ex.TraceID != "mid" {
		t.Fatalf("same-bucket observation replaced a fresh exemplar: %+v", h.ex)
	}
	// A strictly higher bucket replaces.
	h.ObserveExemplar(5, "high", t0.Add(3*time.Second))
	if h.ex.TraceID != "high" {
		t.Fatalf("higher-bucket observation did not replace: %+v", h.ex)
	}
	// A stale exemplar yields to any observation.
	h.ObserveExemplar(0.0005, "fresh", t0.Add(3*time.Second).Add(exemplarTTL+time.Second))
	if h.ex.TraceID != "fresh" {
		t.Fatalf("stale exemplar survived the TTL: %+v", h.ex)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"serve.http.requests": "serve_http_requests",
		"core.or.resolves":    "core_or_resolves",
		"9lives":              "_9lives",
		"ok_name:x":           "ok_name:x",
		"sp ace-dash":         "sp_ace_dash",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
