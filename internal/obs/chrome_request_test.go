package obs_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"andorsched/internal/obs"
)

// fixedRequestTrace is a deterministic trace with a concurrent pair of
// Monte-Carlo chunk spans, so the exporter must open a second track.
func fixedRequestTrace() obs.RequestTrace {
	return obs.RequestTrace{
		TraceID:    "0af7651916cd43dd8448eb211c80319c",
		ParentSpan: "b7ad6b7169203331",
		Endpoint:   "/v1/run",
		Status:     200,
		Start:      time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC),
		DurationUS: 1500,
		Spans: []obs.PhaseSpan{
			{Phase: "decode", StartUS: 0, DurUS: 40},
			{Phase: "admit", StartUS: 40, DurUS: 5},
			{Phase: "cache", StartUS: 45, DurUS: 10, Detail: "hit"},
			{Phase: "queue", StartUS: 55, DurUS: 120},
			{Phase: "exec.mc", StartUS: 175, DurUS: 900, N: 100},
			{Phase: "exec.mc", StartUS: 200, DurUS: 850, N: 100},
			{Phase: "encode", StartUS: 1100, DurUS: 380},
		},
	}
}

// TestChromeTraceRequestGolden pins the request-trace exporter's exact
// output and validates it against the trace_event schema (non-overlapping
// slices per track — the concurrent exec.mc spans must land on separate
// tracks).
func TestChromeTraceRequestGolden(t *testing.T) {
	data, err := obs.ChromeTraceRequest(fixedRequestTrace())
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_request.json")
	if *update {
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to regenerate)", err)
	}
	if string(data) != string(want) {
		t.Errorf("request trace differs from golden file %s (re-run with -update after intentional changes)\ngot:\n%s", golden, data)
	}

	validateChromeTrace(t, data, []string{
		"/v1/run", "decode", "admit", "cache", "queue", "exec.mc", "encode",
	})
}
