package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Flight is an in-process flight recorder for request traces: a
// fixed-size ring of the most recently completed traces plus a
// "slowest N per endpoint" retention list, so a slow request observed in
// production can still be inspected minutes later even after thousands
// of fast requests have rolled through the ring.
//
// Records are pooled: Start hands out a reset *TraceRec, Finish takes it
// back and retains it (ring and/or slowest list, reference-counted);
// once evicted from every retention slot the record returns to the pool.
// The steady-state cost of a traced request is therefore one mutex
// acquisition at completion and no garbage.
//
// A nil *Flight disables tracing: Start returns nil and every other
// method no-ops, mirroring the package's nil-Tracer convention.
type Flight struct {
	// droppedSpans accumulates, across every finished trace, the spans
	// that found the per-trace span array full and were counted instead
	// of stored (see TraceRec). Individual traces expose their own drop
	// count, but those leave the ring quickly; the lifetime total is what
	// says "your span budget is too small for this traffic".
	droppedSpans atomic.Int64

	mu      sync.Mutex
	ring    []*TraceRec // circular, nil until warm
	pos     int
	byID    map[TraceID]*TraceRec
	slow    map[string][]*TraceRec // per endpoint, ascending by duration
	slowCap int
	pool    sync.Pool
}

// DefaultFlightRing and DefaultFlightSlowest size NewFlight's retention
// when the caller passes zero.
const (
	DefaultFlightRing    = 256
	DefaultFlightSlowest = 8
)

// NewFlight returns a recorder retaining the last ringSize completed
// traces plus the slowestPerEndpoint slowest traces of each endpoint
// (zeros select the defaults).
func NewFlight(ringSize, slowestPerEndpoint int) *Flight {
	if ringSize <= 0 {
		ringSize = DefaultFlightRing
	}
	if slowestPerEndpoint <= 0 {
		slowestPerEndpoint = DefaultFlightSlowest
	}
	return &Flight{
		ring:    make([]*TraceRec, ringSize),
		byID:    make(map[TraceID]*TraceRec, ringSize),
		slow:    make(map[string][]*TraceRec),
		slowCap: slowestPerEndpoint,
	}
}

// Start begins recording one request. endpoint labels the request's
// route (a static pattern string, not the raw URL), traceparent is the
// inbound W3C header value ("" for none; invalid values are ignored and
// a fresh trace ID generated), and start is the request's arrival time.
// The returned record is owned by the caller until Finish.
func (f *Flight) Start(endpoint, traceparent string, start time.Time) *TraceRec {
	if f == nil {
		return nil
	}
	r, _ := f.pool.Get().(*TraceRec)
	if r == nil {
		r = &TraceRec{spans: make([]span, maxTraceSpans)}
	} else {
		r.reset()
	}
	r.endpoint = endpoint
	r.start = start
	if tid, sid, ok := ParseTraceparent(traceparent); ok {
		r.id = tid
		r.parent = sid
		r.hasPar = true
	} else {
		r.id = NewTraceID()
	}
	r.idStr = r.id.String()
	return r
}

// Finish completes rec with the response status and retains it. The
// caller must not touch rec afterwards (it may be recycled at any time);
// take snapshots through Get/Recent/Slowest instead.
func (f *Flight) Finish(rec *TraceRec, status int) {
	if f == nil || rec == nil {
		return
	}
	rec.status = status
	rec.dur = time.Since(rec.start)
	// Fold the trace's overflow count into the recorder-lifetime total
	// before retention: reset() clears the per-trace counter when the
	// record is recycled, so this is the only point the number is both
	// final and still attached.
	if d := rec.dropped.Load(); d > 0 {
		f.droppedSpans.Add(int64(d))
	}

	f.mu.Lock()
	defer f.mu.Unlock()

	// Ring slot (always retained there first).
	if old := f.ring[f.pos]; old != nil {
		f.releaseLocked(old)
	}
	f.ring[f.pos] = rec
	rec.refs++
	f.pos = (f.pos + 1) % len(f.ring)

	// Slowest-per-endpoint list: ascending by duration, so index 0 is the
	// cheapest to evict.
	s := f.slow[rec.endpoint]
	if len(s) < f.slowCap {
		s = append(s, rec)
		rec.refs++
		// Bubble the newcomer down to its place; the rest is sorted.
		for i := len(s) - 1; i > 0 && s[i].dur < s[i-1].dur; i-- {
			s[i], s[i-1] = s[i-1], s[i]
		}
		f.slow[rec.endpoint] = s
	} else if len(s) > 0 && rec.dur > s[0].dur {
		f.releaseLocked(s[0])
		s[0] = rec
		rec.refs++
		for i := 0; i+1 < len(s) && s[i].dur > s[i+1].dur; i++ {
			s[i], s[i+1] = s[i+1], s[i]
		}
		f.slow[rec.endpoint] = s
	}

	// ID index last: an inbound traceparent may repeat a trace ID; the
	// newest record wins the index (the older one stays in the ring).
	f.byID[rec.id] = rec
}

// releaseLocked drops one retention reference; at zero the record leaves
// the ID index and returns to the pool. Callers hold f.mu.
func (f *Flight) releaseLocked(r *TraceRec) {
	r.refs--
	if r.refs > 0 {
		return
	}
	if f.byID[r.id] == r {
		delete(f.byID, r.id)
	}
	f.pool.Put(r)
}

// Get returns the retained trace with the given 32-hex-digit ID.
func (f *Flight) Get(idHex string) (RequestTrace, bool) {
	if f == nil || len(idHex) != 32 {
		return RequestTrace{}, false
	}
	var id TraceID
	if !hexDecode(id[:], idHex) {
		return RequestTrace{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.byID[id]
	if !ok {
		return RequestTrace{}, false
	}
	return snapshotLocked(r), true
}

// Recent returns up to limit of the most recently completed traces,
// newest first (limit <= 0 returns the whole ring).
func (f *Flight) Recent(limit int) []RequestTrace {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.ring)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]RequestTrace, 0, limit)
	for i := 1; i <= n && len(out) < limit; i++ {
		r := f.ring[(f.pos-i+n)%n]
		if r == nil {
			break
		}
		out = append(out, snapshotLocked(r))
	}
	return out
}

// Slowest returns the retained slowest traces per endpoint, slowest
// first within each endpoint.
func (f *Flight) Slowest() map[string][]RequestTrace {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][]RequestTrace, len(f.slow))
	for ep, s := range f.slow {
		ts := make([]RequestTrace, 0, len(s))
		for i := len(s) - 1; i >= 0; i-- { // ascending storage → slowest first
			ts = append(ts, snapshotLocked(s[i]))
		}
		out[ep] = ts
	}
	return out
}

// DroppedSpans returns the total spans dropped to per-trace overflow
// across every trace finished on this recorder.
func (f *Flight) DroppedSpans() int64 {
	if f == nil {
		return 0
	}
	return f.droppedSpans.Load()
}

// Len returns the number of traces currently in the ring.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, r := range f.ring {
		if r != nil {
			n++
		}
	}
	return n
}

// snapshotLocked copies a retained record into its immutable exported
// form. Callers hold f.mu, which orders the read against the completing
// request's Finish.
func snapshotLocked(r *TraceRec) RequestTrace {
	n := int(r.n.Load())
	if n > len(r.spans) {
		n = len(r.spans)
	}
	out := RequestTrace{
		TraceID:      r.idStr,
		Endpoint:     r.endpoint,
		Status:       r.status,
		Start:        r.start,
		DurationUS:   float64(r.dur) / float64(time.Microsecond),
		Spans:        make([]PhaseSpan, n),
		DroppedSpans: int(r.dropped.Load()),
	}
	if r.hasPar {
		out.ParentSpan = r.parent.String()
	}
	for i := 0; i < n; i++ {
		s := &r.spans[i]
		out.Spans[i] = PhaseSpan{
			Phase:   s.phase,
			StartUS: float64(s.start) / float64(time.Microsecond),
			DurUS:   float64(s.end-s.start) / float64(time.Microsecond),
			Detail:  s.detail,
			N:       s.n,
		}
	}
	return out
}
