package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// eventJSON is the NDJSON wire form of an Event. All fields are always
// present so consumers never have to distinguish "absent" from zero; the
// kind is the stable string name from Kind.String.
type eventJSON struct {
	Kind   string  `json:"kind"`
	T      float64 `json:"t"` // simulation seconds
	Proc   int     `json:"proc"`
	Task   int     `json:"task"`
	Node   int     `json:"node"`
	Name   string  `json:"name"`
	Level  int     `json:"level"`
	Prev   int     `json:"prev"`
	Branch int     `json:"branch"`
	Value  float64 `json:"value"`
}

// WriteNDJSON streams events as newline-delimited JSON, one event per line,
// in the given order. The format is lossless: every Event field is emitted.
func WriteNDJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, e := range events {
		if err := enc.Encode(eventJSON{
			Kind: e.Kind.String(), T: e.Time,
			Proc: e.Proc, Task: e.Task, Node: e.Node, Name: e.Name,
			Level: e.Level, Prev: e.Prev, Branch: e.Branch, Value: e.Value,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
