// Package obs is the simulator stack's observability layer: a structured
// event tracer, a metrics registry, trace exporters (Chrome trace_event
// JSON, NDJSON, text summaries) and profiling hooks.
//
// The package has no dependencies outside the standard library and no
// dependency on the rest of this repository, so every layer (engine,
// schemes, drivers, binaries) can emit into it without import cycles.
//
// Design rules:
//
//   - Tracing is pull-free and nil-gated: producers hold a Tracer interface
//     value and emit only when it is non-nil, so the default (no tracing)
//     costs one pointer comparison per hook point and allocates nothing.
//     Event is a plain value struct — passing it to Tracer.Event does not
//     box or escape.
//   - Metrics instruments are created up front (at run start) and updated
//     with atomic operations, so concurrent runs may share a registry and
//     the race detector stays quiet.
//   - Exporters consume the recorded []Event / Snapshot after the run;
//     nothing in the hot path formats strings or writes I/O.
package obs

import "sync"

// Kind identifies the type of a traced event.
type Kind uint8

const (
	// EvTaskDispatch: a processor dequeued a task. Time is the dispatch
	// instant, Level the chosen operating level, Prev the processor's level
	// before the pick, Value the power-management overhead (speed
	// computation + change) in seconds charged before execution starts.
	EvTaskDispatch Kind = iota
	// EvTaskFinish: a task completed. Time is the completion instant,
	// Level the processor's level at completion.
	EvTaskFinish
	// EvSpeedChange: a processor changed voltage/speed level. Prev → Level,
	// Value the transition overhead in seconds.
	EvSpeedChange
	// EvSlackShare: a dynamic scheme computed a task's slack-sharing
	// allocation at pickup. Level is the greedy slack-sharing level, Value
	// the slack in seconds beyond the task's minimum (worst-case work at
	// f_max). Proc is -1: policies do not know the executing processor.
	EvSlackShare
	// EvSlackSteal: a speculative floor overrode the greedy slack-sharing
	// level — slack was "stolen" from the current task to bank speed for
	// later work. Prev is the greedy level, Level the floored level.
	EvSlackSteal
	// EvORResolve: an OR synchronization node resolved. Node is the OR
	// node's graph ID, Name its label, Branch the successor index taken.
	EvORResolve
	// EvIdle: a processor resumed work after an idle interval. Time is the
	// end of the interval (so event streams stay in nondecreasing time
	// order), Value its duration in seconds.
	EvIdle
	// EvSectionBegin / EvSectionEnd bracket one program section (the span
	// between OR synchronization barriers). Node is the section ID.
	EvSectionBegin
	EvSectionEnd

	numKinds
)

// String returns the kind's stable wire name (used by the NDJSON exporter).
func (k Kind) String() string {
	switch k {
	case EvTaskDispatch:
		return "task_dispatch"
	case EvTaskFinish:
		return "task_finish"
	case EvSpeedChange:
		return "speed_change"
	case EvSlackShare:
		return "slack_share"
	case EvSlackSteal:
		return "slack_steal"
	case EvORResolve:
		return "or_resolve"
	case EvIdle:
		return "idle"
	case EvSectionBegin:
		return "section_begin"
	case EvSectionEnd:
		return "section_end"
	}
	return "unknown"
}

// Event is one structured trace record. Which fields are meaningful depends
// on Kind (see the Kind constants); unused int fields are -1 when the
// producer has no value for them and Name is empty when there is no label.
type Event struct {
	Kind Kind
	// Time is the simulation time in seconds. Producers emit events in
	// nondecreasing Time order.
	Time float64
	// Proc is the processor index, or -1.
	Proc int
	// Task is the engine's task index within the current section, or -1.
	Task int
	// Node is the application-graph node ID (or section ID for section
	// events), or -1.
	Node int
	// Name labels the task / OR node, if known.
	Name string
	// Level and Prev are platform level indices (new and previous).
	Level, Prev int
	// Branch is the OR successor index taken (EvORResolve), else 0.
	Branch int
	// Value is a kind-specific quantity in seconds (overhead, idle or
	// slack duration).
	Value float64
}

// Tracer receives structured events from the simulator stack. A nil Tracer
// disables tracing; producers must nil-check before emitting so the
// disabled path stays allocation-free.
//
// Implementations must tolerate concurrent Event calls when they are shared
// across concurrently running simulations.
type Tracer interface {
	Event(e Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Event)

// Event implements Tracer.
func (f TracerFunc) Event(e Event) { f(e) }

// Collector is a Tracer that records events in memory for post-run export.
// It is safe for concurrent use.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Event implements Tracer.
func (c *Collector) Event(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the recorded events in arrival order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Len returns the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Reset discards all recorded events.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = c.events[:0]
	c.mu.Unlock()
}

// MultiTracer fans events out to several tracers. Nil entries are skipped.
func MultiTracer(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

func (m multiTracer) Event(e Event) {
	for _, t := range m {
		t.Event(e)
	}
}
