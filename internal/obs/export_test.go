package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteNDJSON(t *testing.T) {
	events := []Event{
		{Kind: EvTaskDispatch, Time: 0.001, Proc: 1, Task: 2, Node: 3, Name: "B", Level: 4, Prev: 5, Value: 6e-6},
		{Kind: EvORResolve, Time: 0.002, Proc: -1, Task: -1, Node: 7, Name: "or1", Branch: 1},
	}
	var b strings.Builder
	if err := WriteNDJSON(&b, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["kind"] != "task_dispatch" || first["name"] != "B" || first["proc"] != 1.0 {
		t.Errorf("first line wrong: %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["kind"] != "or_resolve" || second["branch"] != 1.0 {
		t.Errorf("second line wrong: %v", second)
	}
	// Lossless: every Event field appears on every line.
	for _, key := range []string{"kind", "t", "proc", "task", "node", "name", "level", "prev", "branch", "value"} {
		if _, ok := first[key]; !ok {
			t.Errorf("NDJSON line missing field %q", key)
		}
	}
}
