package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	data := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			break
		}
	}
	return string(data), runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, func() error {
		return run(true, false, "all", "", 1, 1, "", "", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"4a", "6b", "fmin", "clv", "structure", "slew"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestTables(t *testing.T) {
	out, err := capture(t, func() error {
		return run(false, true, "all", "", 1, 1, "", "", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Transmeta TM5400") || !strings.Contains(out, "Intel XScale") {
		t.Errorf("tables output wrong:\n%s", out)
	}
}

func TestOneExperimentText(t *testing.T) {
	out, err := capture(t, func() error {
		return run(false, false, "4b", "", 3, 1, "", "", true, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "normalized energy vs load") || !strings.Contains(out, "speed changes") {
		t.Errorf("experiment output wrong:\n%s", out)
	}
}

func TestCSVOut(t *testing.T) {
	dir := t.TempDir()
	_, err := capture(t, func() error {
		return run(false, false, "6a", "", 2, 1, dir, "", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig6a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "alpha,") {
		t.Errorf("CSV header wrong: %s", data[:40])
	}
}

func TestHTMLOut(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.html")
	_, err := capture(t, func() error {
		return run(false, false, "4a", "", 2, 1, "", path, false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") || !strings.Contains(string(data), "reproduction report") {
		t.Error("HTML report content wrong")
	}
}

func TestPlatformFlag(t *testing.T) {
	out, err := capture(t, func() error {
		return run(false, false, "all", "xscale", 1, 1, "", "", true, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "normalized energy vs load") || !strings.Contains(out, "Intel XScale") {
		t.Errorf("platform study output wrong:\n%s", out)
	}
}

func TestPlatformFlagHetero(t *testing.T) {
	out, err := capture(t, func() error {
		return run(false, false, "all", "biglittle", 2, 1, "", "", true, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "placement") || !strings.Contains(out, "big.LITTLE") {
		t.Errorf("hetero placement study output wrong:\n%s", out)
	}
}

func TestPlatformFlagBad(t *testing.T) {
	if _, err := capture(t, func() error {
		return run(false, false, "all", "quantum", 1, 1, "", "", false, false)
	}); err == nil {
		t.Error("want unknown-platform error")
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := capture(t, func() error {
		return run(false, false, "nope", "", 1, 1, "", "", false, false)
	}); err == nil {
		t.Error("want unknown-ID error")
	}
}

func TestWinnersFlag(t *testing.T) {
	out, err := capture(t, func() error {
		return run(false, false, "all", "", 2, 1, "", "", false, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "best scheme per (load") || !strings.Contains(out, "alpha\\load") {
		t.Errorf("winners output wrong:\n%s", out)
	}
}
