// Command experiments regenerates the paper's evaluation: the platform
// tables (Tables 1–2) and every figure's data series (Figures 4–6), plus
// the ablation studies. Output is aligned text by default, or CSV files
// with -out.
//
// Examples:
//
//	experiments -list
//	experiments -tables
//	experiments -id 4a -runs 1000
//	experiments -id all -runs 200 -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"andorsched/internal/cli"
	"andorsched/internal/core"
	"andorsched/internal/experiments"
	"andorsched/internal/obs"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

func main() {
	var (
		listF     = flag.Bool("list", false, "list available experiments and exit")
		tablesF   = flag.Bool("tables", false, "print the paper's platform tables (Tables 1 and 2) and exit")
		idF       = flag.String("id", "all", "experiment ID (e.g. 4a, 6b, fmin) or 'all'")
		platF     = flag.String("platform", "", "run a custom-platform study instead of the registry: transmeta, xscale, synthetic:N:fmin:fmax, symmetric, biglittle, accel, or a .json heterogeneous spec file (see workloads/biglittle.json)")
		runsF     = flag.Int("runs", 200, "simulated executions per data point (the paper uses 1000)")
		seedF     = flag.Uint64("seed", 2002, "random seed")
		outF      = flag.String("out", "", "directory to write per-experiment CSV files instead of printing tables")
		changesF  = flag.Bool("changes", false, "also print mean speed-change counts per point")
		htmlF     = flag.String("html", "", "write a self-contained HTML report (charts + tables) to this file")
		winnersF  = flag.Bool("winners", false, "print the scheme-selection map (best scheme per load × α cell) and exit")
		parallelF = flag.Int("parallel", 0, "worker goroutines per data point (0 = all CPUs); results are identical for any value")
		cacheF    = flag.Bool("compile-cache", true, "memoize canonical section schedules across plan compiles (results are identical either way; disable for A/B profiling)")
		cStatsF   = flag.Bool("cache-stats", false, "print section-schedule cache statistics to stderr when done")
		profile   obs.Profile
	)
	profile.RegisterFlags(flag.CommandLine, "trace")
	flag.Parse()
	experiments.SetDefaultWorkers(*parallelF)
	if !*cacheF {
		core.SetScheduleCacheCapacity(0)
	}

	var sess *obs.Session
	if profile.Enabled() {
		var err error
		sess, err = profile.Start()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if sess.Addr != "" {
			fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", sess.Addr)
		}
	}

	runErr := run(*listF, *tablesF, *idF, *platF, *runsF, *seedF, *outF, *htmlF, *changesF, *winnersF)
	if *cStatsF {
		st := core.ScheduleCacheStats()
		fmt.Fprintf(os.Stderr, "schedcache: %d hits, %d misses, %d evictions, %d/%d entries\n",
			st.Hits, st.Misses, st.Evictions, st.Size, st.Capacity)
	}
	if sess != nil {
		// Flush profiles even when the run failed (os.Exit skips defers).
		if err := sess.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: profiling:", err)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", runErr)
		os.Exit(1)
	}
}

func run(list, tables bool, id, platform string, runs int, seed uint64, out, html string, changes, winners bool) error {
	if list {
		for _, e := range experiments.All() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if tables {
		fmt.Println(experiments.PlatformTable(power.Transmeta5400()))
		fmt.Println(experiments.PlatformTable(power.IntelXScale()))
		return nil
	}
	if winners {
		return runWinners(runs, seed)
	}

	var todo []experiments.Experiment
	if platform != "" {
		e, err := platformStudy(platform)
		if err != nil {
			return err
		}
		todo = []experiments.Experiment{e}
	} else if id == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		todo = []experiments.Experiment{e}
	}

	if html != "" {
		doc, err := experiments.HTMLReport(todo, runs, seed, func(id string) {
			fmt.Fprintf(os.Stderr, "running %s (%d runs/point)...\n", id, runs)
		})
		if err != nil {
			return err
		}
		if err := os.WriteFile(html, []byte(doc), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", html)
		return nil
	}

	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
	}
	for _, e := range todo {
		fmt.Fprintf(os.Stderr, "running %s (%d runs/point)...\n", e.ID, runs)
		se, err := e.Run(runs, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if out != "" {
			path := filepath.Join(out, "fig"+e.ID+".csv")
			if err := os.WriteFile(path, []byte(se.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
			continue
		}
		fmt.Println(se.Table())
		if changes {
			fmt.Println(se.ChangesTable())
		}
	}
	return nil
}

// platformStudy builds the one-off experiment behind -platform: on a
// heterogeneous machine the schemes × placement-policies study of the
// hetero ablations; on identical processors the standard load sweep (ATR,
// 2 CPUs) on that platform.
func platformStudy(spec string) (experiments.Experiment, error) {
	plat, hp, err := cli.ParseMachine(spec)
	if err != nil {
		return experiments.Experiment{}, err
	}
	if hp != nil {
		return experiments.PlacementStudy(hp), nil
	}
	return experiments.Experiment{
		ID: "platform",
		Title: fmt.Sprintf("Custom platform: normalized energy vs load (ATR, 2 CPUs, %s)",
			plat.Name),
		Run: func(runs int, seed uint64) (*experiments.Series, error) {
			return experiments.EnergyVsLoad(experiments.Config{
				Graph:     workload.ATR(workload.DefaultATRConfig()),
				Procs:     2,
				Platform:  plat,
				Overheads: power.DefaultOverheads(),
				Schemes: []core.Scheme{core.SPM, core.GSS, core.SS1,
					core.SS2, core.AS},
				Runs: runs,
				Seed: seed,
			}, []float64{0.2, 0.4, 0.6, 0.8, 1.0})
		},
	}, nil
}

// runWinners prints the scheme-selection maps for the paper's two
// platforms on the ATR workload: which scheme to deploy at each (load, α)
// operating point.
func runWinners(runs int, seed uint64) error {
	grid := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	alphas := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	for _, plat := range []*power.Platform{power.Transmeta5400(), power.IntelXScale()} {
		fmt.Fprintf(os.Stderr, "computing winner map on %s...\n", plat.Name)
		g, err := experiments.WinnerMap(experiments.Config{
			Graph:     workload.ATR(workload.DefaultATRConfig()),
			Procs:     2,
			Platform:  plat,
			Overheads: power.DefaultOverheads(),
			Schemes: []core.Scheme{core.SPM, core.GSS, core.SS1,
				core.SS2, core.AS},
			Runs: runs,
			Seed: seed,
		}, grid, alphas)
		if err != nil {
			return err
		}
		fmt.Printf("# ATR on 2×%s — best scheme per (load, α)\n%s\n", plat.Name, experiments.WinnerTable(g))
	}
	return nil
}
