// Command benchregress maintains BENCH.json, the repository's committed
// benchmark baseline (see docs/BENCHMARKS.md).
//
//	go test -run '^$' -bench . -benchmem . > bench.txt
//	go test -run '^$' -bench ServeRunWarmParallel -benchmem -cpu 1,2,4 . > scaling.txt
//	go run ./cmd/benchregress -emit -in bench.txt -scaling scaling.txt -out BENCH.json -note "..."
//	go run ./cmd/benchregress -compare bench.txt -against BENCH.json -tol 0.2
//
// -emit parses benchmark output into a schema-stable report, preserving the
// pre_arena section of an existing report at -out; -scaling additionally
// records a `-cpu` sweep as the per-core scaling table (kept from the
// previous report when omitted). -compare exits 1 if any benchmark
// regressed beyond the tolerance band; the scaling table is a record, not
// a gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"andorsched/internal/benchregress"
)

func main() {
	var (
		emit    = flag.Bool("emit", false, "parse -in and write a report to -out")
		compare = flag.String("compare", "", "bench output file to compare against -against ('-' for stdin)")
		in      = flag.String("in", "-", "bench output file for -emit ('-' for stdin)")
		out     = flag.String("out", "BENCH.json", "report path for -emit")
		against = flag.String("against", "BENCH.json", "baseline report for -compare")
		tol     = flag.Float64("tol", 0.20, "relative tolerance band for -compare")
		note    = flag.String("note", "", "provenance note stored in the report (-emit)")
		scaling = flag.String("scaling", "", "bench output of a -cpu sweep; stored as the per-core scaling table (-emit)")
	)
	flag.Parse()
	switch {
	case *emit:
		if err := runEmit(*in, *out, *note, *scaling); err != nil {
			fatal(err)
		}
	case *compare != "":
		regs, err := runCompare(*compare, *against, *tol)
		if err != nil {
			fatal(err)
		}
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "REGRESSION:", r)
			}
			os.Exit(1)
		}
		fmt.Println("benchregress: no regressions")
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func open(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func runEmit(in, out, note, scaling string) error {
	r, err := open(in)
	if err != nil {
		return err
	}
	defer r.Close()
	cur, err := benchregress.ParseGoBench(r)
	if err != nil {
		return err
	}
	rep := &benchregress.Report{Schema: benchregress.Schema, Note: note, Benchmarks: cur}
	if scaling != "" {
		sr, err := open(scaling)
		if err != nil {
			return err
		}
		defer sr.Close()
		if rep.Scaling, err = benchregress.ParseGoBenchByCPU(sr); err != nil {
			return err
		}
	}
	if prev, err := benchregress.Load(out); err == nil {
		rep.PreArena = prev.PreArena // keep the historical before-numbers
		if rep.Scaling == nil {
			rep.Scaling = prev.Scaling // keep the last recorded sweep
		}
		if note == "" {
			rep.Note = prev.Note
		}
	}
	if err := rep.Save(out); err != nil {
		return err
	}
	fmt.Printf("benchregress: wrote %s (%d benchmarks)\n", out, len(cur))
	return nil
}

func runCompare(in, against string, tol float64) ([]benchregress.Regression, error) {
	base, err := benchregress.Load(against)
	if err != nil {
		return nil, err
	}
	r, err := open(in)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	cur, err := benchregress.ParseGoBench(r)
	if err != nil {
		return nil, err
	}
	return benchregress.Compare(base, cur, tol), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchregress:", err)
	os.Exit(1)
}
