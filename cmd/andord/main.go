// Command andord serves the AND/OR power-aware scheduler over HTTP/JSON.
//
// The daemon compiles applications once (LRU plan cache with
// duplicate-compile suppression) and executes runs on a bounded worker
// pool of zero-allocation simulation arenas. See docs/SERVER.md for the
// API.
//
// Usage:
//
//	andord [-addr :8080] [-workers N] [-queue N] [-cache N]
//	       [-timeout 15s] [-max-body 1048576] [-max-runs 100000]
//	       [-tenant-rate 0] [-tenant-burst N] [-tenant-inflight N]
//	       [-tenant-run-rate N] [-tenant-run-burst N]
//	       [-tenant-header X-API-Key] [-tenant-by-ip] [-max-batch 256]
//	       [-trace-off] [-trace-ring 256] [-trace-slowest 8]
//	       [-legacy-cache]
//
// By default the serve path is shared-nothing: every pool worker owns a
// private plan-cache shard and schedule-cache shard, and requests are
// routed to the owning worker by content digest (see docs/SERVER.md).
// -legacy-cache restores the shared LRU plan cache and shared queue; the
// two paths answer byte-identically.
//
// Per-tenant admission control is off by default; -tenant-rate > 0
// enables it. Tenants are identified by the -tenant-header request
// header, falling back to the remote IP (-tenant-by-ip forces IP keying).
//
// Request tracing is on by default: every request carries an X-Trace-Id
// and recent/slowest traces are browsable at /debug/requests (see
// docs/OBSERVABILITY.md). -trace-off disables it; -trace-ring and
// -trace-slowest size the flight recorder's retention.
//
// SIGINT/SIGTERM drain gracefully: the listener closes first, in-flight
// requests complete, then the worker pool stops.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"andorsched/internal/serve"
	"andorsched/internal/serve/tenant"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue bound; beyond it requests get 429")
	cache := flag.Int("cache", 128, "plan cache capacity (compiled applications)")
	timeout := flag.Duration("timeout", 15*time.Second, "per-request timeout")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	maxRuns := flag.Int("max-runs", 100000, "largest runs count a single request may ask for")
	maxProcs := flag.Int("max-procs", 64, "largest processor count a single request may ask for (hetero platform specs included)")
	maxBatch := flag.Int("max-batch", 256, "largest item count a /v1/batch request may carry")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown grace period")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant requests/sec (0 = admission control off)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant request burst (0 = rate, min 1)")
	tenantInflight := flag.Int("tenant-inflight", 0, "per-tenant concurrent request cap (0 = unlimited)")
	tenantRunRate := flag.Float64("tenant-run-rate", 0, "per-tenant Monte-Carlo runs/sec budget (0 = unlimited)")
	tenantRunBurst := flag.Float64("tenant-run-burst", 0, "per-tenant run burst (0 = 10x run rate)")
	tenantHeader := flag.String("tenant-header", "X-API-Key", "request header identifying the tenant")
	tenantByIP := flag.Bool("tenant-by-ip", false, "key tenants by remote IP, ignoring the header")
	legacyCache := flag.Bool("legacy-cache", false, "use the shared plan cache and queue instead of the shared-nothing per-worker shards")
	traceOff := flag.Bool("trace-off", false, "disable request tracing and /debug/requests")
	traceRing := flag.Int("trace-ring", 0, "flight-recorder ring size (0 = default 256)")
	traceSlowest := flag.Int("trace-slowest", 0, "slowest traces retained per endpoint (0 = default 8)")
	flag.Parse()

	s := serve.New(serve.Config{
		Workers:        *workers,
		QueueSize:      *queue,
		CacheSize:      *cache,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		MaxRuns:        *maxRuns,
		MaxProcs:       *maxProcs,
		MaxBatchItems:  *maxBatch,
		LegacyCache:    *legacyCache,
		Trace: serve.TraceConfig{
			Disabled:           *traceOff,
			RingSize:           *traceRing,
			SlowestPerEndpoint: *traceSlowest,
		},
		Tenant: tenant.Config{
			Enabled:        *tenantRate > 0,
			KeyHeader:      *tenantHeader,
			ByIPOnly:       *tenantByIP,
			RequestsPerSec: *tenantRate,
			Burst:          *tenantBurst,
			MaxInflight:    *tenantInflight,
			RunsPerSec:     *tenantRunRate,
			RunBurst:       *tenantRunBurst,
		},
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("andord: %v", err)
	}
	log.Printf("andord: listening on %s (workers=%d queue=%d cache=%d)",
		l.Addr(), *workers, *queue, *cache)

	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		log.Printf("andord: %s, draining (grace %s)", got, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			log.Printf("andord: drain incomplete: %v", err)
			os.Exit(1)
		}
		<-errc // http.ErrServerClosed
		log.Print("andord: drained cleanly")
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "andord: %v\n", err)
			os.Exit(1)
		}
	}
}
