// Command andord serves the AND/OR power-aware scheduler over HTTP/JSON.
//
// The daemon compiles applications once (LRU plan cache with
// duplicate-compile suppression) and executes runs on a bounded worker
// pool of zero-allocation simulation arenas. See docs/SERVER.md for the
// API.
//
// Usage:
//
//	andord [-addr :8080] [-workers N] [-queue N] [-cache N]
//	       [-timeout 15s] [-max-body 1048576] [-max-runs 100000]
//
// SIGINT/SIGTERM drain gracefully: the listener closes first, in-flight
// requests complete, then the worker pool stops.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"andorsched/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue bound; beyond it requests get 429")
	cache := flag.Int("cache", 128, "plan cache capacity (compiled applications)")
	timeout := flag.Duration("timeout", 15*time.Second, "per-request timeout")
	maxBody := flag.Int64("max-body", 1<<20, "request body size limit in bytes")
	maxRuns := flag.Int("max-runs", 100000, "largest runs count a single request may ask for")
	maxProcs := flag.Int("max-procs", 64, "largest processor count a single request may ask for")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown grace period")
	flag.Parse()

	s := serve.New(serve.Config{
		Workers:        *workers,
		QueueSize:      *queue,
		CacheSize:      *cache,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		MaxRuns:        *maxRuns,
		MaxProcs:       *maxProcs,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("andord: %v", err)
	}
	log.Printf("andord: listening on %s (workers=%d queue=%d cache=%d)",
		l.Addr(), *workers, *queue, *cache)

	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		log.Printf("andord: %s, draining (grace %s)", got, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			log.Printf("andord: drain incomplete: %v", err)
			os.Exit(1)
		}
		<-errc // http.ErrServerClosed
		log.Print("andord: drained cleanly")
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "andord: %v\n", err)
			os.Exit(1)
		}
	}
}
