// Command andorsim runs one power-aware scheduling simulation: it plans an
// AND/OR application on a multiprocessor DVS platform, executes it once
// under the selected scheme, and reports timing, energy and (optionally)
// the schedule.
//
// Examples:
//
//	andorsim -workload atr -procs 2 -platform transmeta -scheme GSS -load 0.5
//	andorsim -workload synthetic -scheme AS -load 0.7 -trace -stats
//	andorsim -workload random:7 -platform xscale -scheme SS2 -deadline 0.08 -worst
//	andorsim -workload atr -scheme GSS -trace-out trace.json -events-out run.ndjson
//
// Observability (see docs/OBSERVABILITY.md): -stats prints the metrics
// snapshot with per-processor utilization; -trace-out writes the full
// structured event trace as Chrome trace_event JSON (chrome://tracing,
// Perfetto); -events-out writes it as NDJSON; -cpuprofile, -memprofile,
// -exectrace and -pprof profile the simulator itself (-trace was already
// taken by the Gantt printer, hence -exectrace).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"andorsched/internal/cli"
	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/experiments"
	"andorsched/internal/obs"
	"andorsched/internal/power"
	"andorsched/internal/sim"
)

// options collects every flag-settable parameter of one invocation.
type options struct {
	workload  string
	platform  string
	placement string
	procs     int
	scheme    string
	load      float64
	deadline  float64
	seed      uint64
	worst     bool

	trace     bool // print the Gantt + ASCII timeline
	printPlan bool
	stats     bool // print the metrics snapshot (per-proc utilization etc.)
	stream    int
	compare   string
	runs      int

	svgPath    string
	chromePath string // rendered schedule (sim.ChromeTrace)
	traceOut   string // structured event trace as Chrome trace_event JSON
	eventsOut  string // structured event trace as NDJSON

	changeUs, compCycles, slewUsPerV float64

	profile obs.Profile
}

func main() {
	var o options
	flag.StringVar(&o.workload, "workload", "synthetic", "application: atr, synthetic, random[:seed], or a .json graph file")
	flag.StringVar(&o.platform, "platform", "transmeta", "platform: transmeta, xscale, synthetic:N:fminMHz:fmaxMHz, a heterogeneous reference (symmetric, biglittle, accel), or a .json platform spec file")
	flag.StringVar(&o.placement, "placement", "", "heterogeneous placement policy: fastest-first (default), energy-greedy, or class-affinity")
	flag.IntVar(&o.procs, "procs", 2, "number of processors (identical-processor platforms; heterogeneous specs carry their own counts)")
	flag.StringVar(&o.scheme, "scheme", "GSS", "power management scheme: NPM, SPM, GSS, SS1, SS2, AS, or the extensions CLV, ASP, ORA")
	flag.Float64Var(&o.load, "load", 0.5, "system load (canonical worst case / deadline); ignored if -deadline is set")
	flag.Float64Var(&o.deadline, "deadline", 0, "absolute deadline in seconds (overrides -load)")
	flag.Uint64Var(&o.seed, "seed", 42, "random seed for actual execution times and OR branches")
	flag.BoolVar(&o.worst, "worst", false, "run with worst-case execution times instead of sampled ones")
	flag.BoolVar(&o.trace, "trace", false, "print the per-processor schedule (Gantt)")
	flag.BoolVar(&o.printPlan, "plan", false, "print the off-line plan (sections, PMP values, latest start times)")
	flag.BoolVar(&o.stats, "stats", false, "print the run's metrics snapshot: per-processor utilization, speed changes, histograms")
	flag.IntVar(&o.stream, "stream", 0, "simulate this many periodic frames instead of a single run (period = deadline)")
	flag.StringVar(&o.compare, "compare", "", "two schemes 'A,B': paired significance test over -runs frames instead of a single run")
	flag.IntVar(&o.runs, "runs", 500, "frames for -compare")
	flag.StringVar(&o.svgPath, "svg", "", "write the schedule as an SVG timeline to this file")
	flag.StringVar(&o.chromePath, "chrome-trace", "", "write the rendered schedule as Chrome Trace Event JSON to this file")
	flag.StringVar(&o.traceOut, "trace-out", "", "write the structured event trace as Chrome Trace Event JSON to this file")
	flag.StringVar(&o.eventsOut, "events-out", "", "write the structured event trace as NDJSON to this file")
	flag.Float64Var(&o.changeUs, "change-overhead-us", 5, "voltage/speed change overhead in µs")
	flag.Float64Var(&o.compCycles, "comp-overhead-cycles", 600, "speed computation overhead in cycles")
	flag.Float64Var(&o.slewUsPerV, "slew-us-per-volt", 0, "voltage-slew transition cost in µs per volt (0 = the paper's fixed-cost model)")
	o.profile.RegisterFlags(flag.CommandLine, "exectrace")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "andorsim:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.profile.Enabled() {
		sess, err := o.profile.Start()
		if err != nil {
			return err
		}
		if sess.Addr != "" {
			fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", sess.Addr)
		}
		defer func() {
			if err := sess.Stop(); err != nil {
				fmt.Fprintln(os.Stderr, "andorsim: profiling:", err)
			}
		}()
	}

	g, err := cli.ParseWorkload(o.workload)
	if err != nil {
		return err
	}
	plat, hp, err := cli.ParseMachine(o.platform)
	if err != nil {
		return err
	}
	scheme, err := core.ParseScheme(o.scheme)
	if err != nil {
		return err
	}
	ov := power.Overheads{SpeedCompCycles: o.compCycles, SpeedChangeTime: o.changeUs * 1e-6, VoltSlewTime: o.slewUsPerV * 1e-6}

	var plan *core.Plan
	if hp != nil {
		place, err := cli.ParsePlacement(o.placement)
		if err != nil {
			return err
		}
		plan, err = core.NewHeteroPlan(g, hp, ov, place)
		if err != nil {
			return err
		}
	} else {
		if o.placement != "" {
			return fmt.Errorf("-placement applies to heterogeneous platforms; %q has identical processors", o.platform)
		}
		plan, err = core.NewPlan(g, o.procs, plat, ov)
		if err != nil {
			return err
		}
	}
	deadline := o.deadline
	if deadline == 0 {
		if o.load <= 0 || o.load > 1 {
			return fmt.Errorf("load %g outside (0,1]", o.load)
		}
		deadline = plan.CTWorst / o.load
	}

	fmt.Printf("application : %s (%d nodes, %d sections, %d execution paths)\n",
		g.Name, g.Len(), plan.NumSections(), plan.Sections.NumPaths())
	if hp != nil {
		fmt.Printf("platform    : %s (%d processors", hp.Name, hp.NumProcs())
		for c := 0; c < hp.NumClasses(); c++ {
			cl := hp.Class(c)
			fmt.Printf(", %d × %s ×%.2g", cl.Count, cl.Plat.Name, cl.Speed)
		}
		fmt.Printf("), placement %s\n", plan.Placement.Name())
	} else {
		fmt.Printf("platform    : %d × %s (%d levels, %s – %s)\n",
			o.procs, plat.Name, plat.NumLevels(), plat.Min(), plat.Max())
	}
	fmt.Printf("off-line    : CT_worst=%.3fms CT_avg=%.3fms deadline=%.3fms (load %.3f)\n",
		plan.CTWorst*1e3, plan.CTAvg*1e3, deadline*1e3, plan.CTWorst/deadline)

	if o.printPlan {
		fmt.Println()
		fmt.Print(plan.Describe(deadline))
		fmt.Println()
	}

	if o.compare != "" {
		if o.traceOut != "" || o.eventsOut != "" {
			fmt.Fprintln(os.Stderr, "andorsim: -trace-out/-events-out apply to single runs and -stream, not -compare; ignoring")
		}
		return runCompare(plan, o, deadline)
	}

	// Observability wiring: an in-memory collector feeds the event-trace
	// exporters, a metrics registry feeds -stats.
	var collector *obs.Collector
	if o.traceOut != "" || o.eventsOut != "" {
		collector = obs.NewCollector()
	}
	var metrics *obs.Metrics
	if o.stats {
		metrics = obs.NewMetrics()
	}

	if o.stream > 0 {
		res, err := plan.RunStream(core.StreamConfig{
			Scheme: scheme, Period: deadline, Frames: o.stream,
			Sampler:     exectime.NewSampler(exectime.NewSource(o.seed)),
			CarryLevels: true,
			Tracer:      tracerOrNil(collector),
			Metrics:     metrics,
		})
		if err != nil {
			return err
		}
		fmt.Printf("scheme      : %s over %d frames (period %.3fms)\n", scheme, o.stream, deadline*1e3)
		fmt.Printf("energy      : total %.4gJ = active %.4g + overhead %.4g + idle %.4g\n",
			res.Energy(), res.ActiveEnergy, res.OverheadEnergy, res.IdleEnergy)
		fmt.Printf("timing      : %d misses, %d LST violations, finish avg %.3fms max %.3fms\n",
			res.DeadlineMisses, res.LSTViolations, res.FinishStats.Mean()*1e3, res.FinishStats.Max()*1e3)
		fmt.Printf("speed chgs  : %d (%.2f per frame)\n", res.SpeedChanges, float64(res.SpeedChanges)/float64(o.stream))
		if o.stats && res.Metrics != nil {
			printStats(*res.Metrics, plan.Procs, deadline*float64(o.stream))
		}
		return writeEventExports(o, collector)
	}

	if hp != nil && (o.trace || o.svgPath != "" || o.chromePath != "") {
		// The schedule renderers label speeds off one DVS table; classes
		// have their own. The structured exports (-trace-out/-events-out)
		// carry processor indices and work fine.
		return fmt.Errorf("-trace, -svg and -chrome-trace are not supported on heterogeneous platforms yet (use -trace-out/-events-out)")
	}
	collect := o.trace || o.svgPath != "" || o.chromePath != ""
	cfg := core.RunConfig{
		Scheme: scheme, Deadline: deadline, CollectTrace: collect,
		Tracer: tracerOrNil(collector), Metrics: metrics,
	}
	if o.worst {
		cfg.WorstCase = true
	} else {
		cfg.Sampler = exectime.NewSampler(exectime.NewSource(o.seed))
	}
	res, err := plan.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("scheme      : %s\n", scheme)
	fmt.Printf("finish      : %.3fms (deadline met: %v, LST violations: %d)\n",
		res.Finish*1e3, res.MetDeadline, res.LSTViolations)
	fmt.Printf("path        : %d OR decisions", len(res.Path))
	for _, c := range res.Path {
		fmt.Printf("  %s→%d", c.Or.Name, c.Branch)
	}
	fmt.Println()
	fmt.Printf("energy      : total %.4gJ = active %.4gJ + overhead %.4gJ + idle %.4gJ\n",
		res.Energy(), res.ActiveEnergy, res.OverheadEnergy, res.IdleEnergy)
	if hp != nil && len(res.ClassGrossEnergy) == hp.NumClasses() {
		fmt.Printf("per class   :")
		for c := range res.ClassGrossEnergy {
			fmt.Printf("  %s %.4gJ (idle %.4gJ)",
				hp.Class(c).Name, res.ClassGrossEnergy[c]+res.ClassIdleEnergy[c], res.ClassIdleEnergy[c])
		}
		fmt.Println()
	}
	fmt.Printf("speed chgs  : %d\n", res.SpeedChanges)
	fmt.Printf("residency   :")
	for i, t := range res.LevelTime {
		if t > 0 {
			if plat != nil {
				fmt.Printf("  %.0fMHz %.1f%%", plat.Levels()[i].Freq/1e6, 100*t/res.BusyTime)
			} else {
				// Heterogeneous levels are class-local indices; frequencies
				// differ per class, so report the index residency.
				fmt.Printf("  L%d %.1f%%", i, 100*t/res.BusyTime)
			}
		}
	}
	fmt.Println()

	// The NPM baseline for context.
	baseCfg := cfg
	baseCfg.Scheme = core.NPM
	baseCfg.CollectTrace = false
	baseCfg.Tracer = nil
	baseCfg.Metrics = nil
	if !o.worst {
		baseCfg.Sampler = exectime.NewSampler(exectime.NewSource(o.seed))
	}
	base, err := plan.Run(baseCfg)
	if err != nil {
		return err
	}
	fmt.Printf("vs NPM      : %.4f (NPM total %.4gJ)\n", res.Energy()/base.Energy(), base.Energy())

	if o.stats && res.Metrics != nil {
		horizon := deadline
		if res.Finish > horizon {
			horizon = res.Finish
		}
		printStats(*res.Metrics, plan.Procs, horizon)
	}

	if o.trace {
		fmt.Println("\nschedule:")
		fmt.Print(sim.Gantt(plat, res.Trace))
		fmt.Println()
		fmt.Print(sim.Timeline(res.Trace, deadline, 100))
	}
	if o.svgPath != "" {
		if err := os.WriteFile(o.svgPath, []byte(sim.SVG(plat, res.Trace, deadline)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.svgPath)
	}
	if o.chromePath != "" {
		data, err := sim.ChromeTrace(plat, res.Trace)
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.chromePath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (open in chrome://tracing)\n", o.chromePath)
	}
	return writeEventExports(o, collector)
}

// tracerOrNil avoids the classic non-nil-interface-around-nil-pointer trap:
// a nil *Collector stored in a Tracer interface would defeat the engine's
// nil gate.
func tracerOrNil(c *obs.Collector) obs.Tracer {
	if c == nil {
		return nil
	}
	return c
}

// writeEventExports writes the collected structured event trace to the
// -trace-out (Chrome trace_event JSON) and -events-out (NDJSON) files.
func writeEventExports(o options, c *obs.Collector) error {
	if c == nil {
		return nil
	}
	events := c.Events()
	if o.traceOut != "" {
		data, err := obs.ChromeTrace(events)
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.traceOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events; open in chrome://tracing or Perfetto)\n", o.traceOut, len(events))
	}
	if o.eventsOut != "" {
		f, err := os.Create(o.eventsOut)
		if err != nil {
			return err
		}
		if err := obs.WriteNDJSON(f, events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events)\n", o.eventsOut, len(events))
	}
	return nil
}

// printStats renders the metrics snapshot: a per-processor table
// (utilization over the horizon, busy/overhead seconds, speed changes)
// followed by the full registry summary.
func printStats(snap obs.Snapshot, procs int, horizon float64) {
	fmt.Println("\nper-processor stats:")
	for i := 0; i < procs; i++ {
		busy, _ := snap.Gauge(sim.MetricProcBusy(i))
		oh, _ := snap.Gauge(sim.MetricProcOverhead(i))
		changes, _ := snap.Counter(sim.MetricProcSpeedChanges(i))
		util := 0.0
		if horizon > 0 {
			util = (busy + oh) / horizon
		}
		fmt.Printf("  P%-2d util %5.1f%%  busy %9.3fms  overhead %8.3fms  speed-changes %d\n",
			i, util*100, busy*1e3, oh*1e3, changes)
	}
	fmt.Println()
	fmt.Print(snap.Summary())
}

func runCompare(plan *core.Plan, o options, deadline float64) error {
	names := strings.SplitN(o.compare, ",", 2)
	if len(names) != 2 {
		return fmt.Errorf("-compare wants two scheme names 'A,B'")
	}
	a, err := core.ParseScheme(names[0])
	if err != nil {
		return err
	}
	bScheme, err := core.ParseScheme(names[1])
	if err != nil {
		return err
	}
	cmp, err := experiments.CompareSchemes(plan, a, bScheme, deadline, o.runs, o.seed)
	if err != nil {
		return err
	}
	fmt.Printf("paired comparison over %d frames (common random numbers):\n", cmp.Runs)
	fmt.Printf("  E[%s] − E[%s] = %+.4f ±%.4f (normalized to NPM), z = %.2f\n",
		cmp.A, cmp.B, cmp.MeanDiff, cmp.CI95, cmp.Z)
	switch {
	case !cmp.Significant:
		fmt.Println("  verdict: no significant difference at the 5% level")
	case cmp.MeanDiff < 0:
		fmt.Printf("  verdict: %s saves significantly more energy than %s\n", cmp.A, cmp.B)
	default:
		fmt.Printf("  verdict: %s saves significantly more energy than %s\n", cmp.B, cmp.A)
	}
	return nil
}
