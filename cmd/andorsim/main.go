// Command andorsim runs one power-aware scheduling simulation: it plans an
// AND/OR application on a multiprocessor DVS platform, executes it once
// under the selected scheme, and reports timing, energy and (optionally)
// the schedule.
//
// Examples:
//
//	andorsim -workload atr -procs 2 -platform transmeta -scheme GSS -load 0.5
//	andorsim -workload synthetic -scheme AS -load 0.7 -trace
//	andorsim -workload random:7 -platform xscale -scheme SS2 -deadline 0.08 -worst
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"andorsched/internal/cli"
	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/experiments"
	"andorsched/internal/power"
	"andorsched/internal/sim"
)

func main() {
	var (
		workloadF = flag.String("workload", "synthetic", "application: atr, synthetic, random[:seed], or a .json graph file")
		platF     = flag.String("platform", "transmeta", "platform: transmeta, xscale, or synthetic:N:fminMHz:fmaxMHz")
		procsF    = flag.Int("procs", 2, "number of processors")
		schemeF   = flag.String("scheme", "GSS", "power management scheme: NPM, SPM, GSS, SS1, SS2, AS, or the extensions CLV, ASP")
		loadF     = flag.Float64("load", 0.5, "system load (canonical worst case / deadline); ignored if -deadline is set")
		deadlineF = flag.Float64("deadline", 0, "absolute deadline in seconds (overrides -load)")
		seedF     = flag.Uint64("seed", 42, "random seed for actual execution times and OR branches")
		worstF    = flag.Bool("worst", false, "run with worst-case execution times instead of sampled ones")
		traceF    = flag.Bool("trace", false, "print the per-processor schedule (Gantt)")
		planF     = flag.Bool("plan", false, "print the off-line plan (sections, PMP values, latest start times)")
		streamF   = flag.Int("stream", 0, "simulate this many periodic frames instead of a single run (period = deadline)")
		compareF  = flag.String("compare", "", "two schemes 'A,B': paired significance test over -runs frames instead of a single run")
		runsF     = flag.Int("runs", 500, "frames for -compare")
		svgF      = flag.String("svg", "", "write the schedule as an SVG timeline to this file")
		chromeF   = flag.String("chrome-trace", "", "write the schedule as Chrome Trace Event JSON to this file")
		changeusF = flag.Float64("change-overhead-us", 5, "voltage/speed change overhead in µs")
		compF     = flag.Float64("comp-overhead-cycles", 600, "speed computation overhead in cycles")
		slewF     = flag.Float64("slew-us-per-volt", 0, "voltage-slew transition cost in µs per volt (0 = the paper's fixed-cost model)")
	)
	flag.Parse()

	if err := run(*workloadF, *platF, *procsF, *schemeF, *loadF, *deadlineF,
		*seedF, *worstF, *traceF, *planF, *streamF, *compareF, *runsF,
		*svgF, *chromeF, *changeusF, *compF, *slewF); err != nil {
		fmt.Fprintln(os.Stderr, "andorsim:", err)
		os.Exit(1)
	}
}

func run(workloadSpec, platSpec string, procs int, schemeName string,
	load, deadline float64, seed uint64, worst, trace, printPlan bool, stream int,
	compare string, runs int, svgPath, chromePath string, changeUs, compCycles, slewUsPerV float64) error {
	g, err := cli.ParseWorkload(workloadSpec)
	if err != nil {
		return err
	}
	plat, err := cli.ParsePlatform(platSpec)
	if err != nil {
		return err
	}
	scheme, err := core.ParseScheme(schemeName)
	if err != nil {
		return err
	}
	ov := power.Overheads{SpeedCompCycles: compCycles, SpeedChangeTime: changeUs * 1e-6, VoltSlewTime: slewUsPerV * 1e-6}

	plan, err := core.NewPlan(g, procs, plat, ov)
	if err != nil {
		return err
	}
	if deadline == 0 {
		if load <= 0 || load > 1 {
			return fmt.Errorf("load %g outside (0,1]", load)
		}
		deadline = plan.CTWorst / load
	}

	fmt.Printf("application : %s (%d nodes, %d sections, %d execution paths)\n",
		g.Name, g.Len(), plan.NumSections(), plan.Sections.NumPaths())
	fmt.Printf("platform    : %d × %s (%d levels, %s – %s)\n",
		procs, plat.Name, plat.NumLevels(), plat.Min(), plat.Max())
	fmt.Printf("off-line    : CT_worst=%.3fms CT_avg=%.3fms deadline=%.3fms (load %.3f)\n",
		plan.CTWorst*1e3, plan.CTAvg*1e3, deadline*1e3, plan.CTWorst/deadline)

	if printPlan {
		fmt.Println()
		fmt.Print(plan.Describe(deadline))
		fmt.Println()
	}

	if compare != "" {
		names := strings.SplitN(compare, ",", 2)
		if len(names) != 2 {
			return fmt.Errorf("-compare wants two scheme names 'A,B'")
		}
		a, err := core.ParseScheme(names[0])
		if err != nil {
			return err
		}
		bScheme, err := core.ParseScheme(names[1])
		if err != nil {
			return err
		}
		cmp, err := experiments.CompareSchemes(plan, a, bScheme, deadline, runs, seed)
		if err != nil {
			return err
		}
		fmt.Printf("paired comparison over %d frames (common random numbers):\n", cmp.Runs)
		fmt.Printf("  E[%s] − E[%s] = %+.4f ±%.4f (normalized to NPM), z = %.2f\n",
			cmp.A, cmp.B, cmp.MeanDiff, cmp.CI95, cmp.Z)
		switch {
		case !cmp.Significant:
			fmt.Println("  verdict: no significant difference at the 5% level")
		case cmp.MeanDiff < 0:
			fmt.Printf("  verdict: %s saves significantly more energy than %s\n", cmp.A, cmp.B)
		default:
			fmt.Printf("  verdict: %s saves significantly more energy than %s\n", cmp.B, cmp.A)
		}
		return nil
	}

	if stream > 0 {
		res, err := plan.RunStream(core.StreamConfig{
			Scheme: scheme, Period: deadline, Frames: stream,
			Sampler:     exectime.NewSampler(exectime.NewSource(seed)),
			CarryLevels: true,
		})
		if err != nil {
			return err
		}
		fmt.Printf("scheme      : %s over %d frames (period %.3fms)\n", scheme, stream, deadline*1e3)
		fmt.Printf("energy      : total %.4gJ = active %.4g + overhead %.4g + idle %.4g\n",
			res.Energy(), res.ActiveEnergy, res.OverheadEnergy, res.IdleEnergy)
		fmt.Printf("timing      : %d misses, %d LST violations, finish avg %.3fms max %.3fms\n",
			res.DeadlineMisses, res.LSTViolations, res.FinishStats.Mean()*1e3, res.FinishStats.Max()*1e3)
		fmt.Printf("speed chgs  : %d (%.2f per frame)\n", res.SpeedChanges, float64(res.SpeedChanges)/float64(stream))
		return nil
	}

	collect := trace || svgPath != "" || chromePath != ""
	cfg := core.RunConfig{Scheme: scheme, Deadline: deadline, CollectTrace: collect}
	if worst {
		cfg.WorstCase = true
	} else {
		cfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
	}
	res, err := plan.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("scheme      : %s\n", scheme)
	fmt.Printf("finish      : %.3fms (deadline met: %v, LST violations: %d)\n",
		res.Finish*1e3, res.MetDeadline, res.LSTViolations)
	fmt.Printf("path        : %d OR decisions", len(res.Path))
	for _, c := range res.Path {
		fmt.Printf("  %s→%d", c.Or.Name, c.Branch)
	}
	fmt.Println()
	fmt.Printf("energy      : total %.4gJ = active %.4gJ + overhead %.4gJ + idle %.4gJ\n",
		res.Energy(), res.ActiveEnergy, res.OverheadEnergy, res.IdleEnergy)
	fmt.Printf("speed chgs  : %d\n", res.SpeedChanges)
	fmt.Printf("residency   :")
	for i, t := range res.LevelTime {
		if t > 0 {
			fmt.Printf("  %.0fMHz %.1f%%", plat.Levels()[i].Freq/1e6, 100*t/res.BusyTime)
		}
	}
	fmt.Println()

	// The NPM baseline for context.
	baseCfg := cfg
	baseCfg.Scheme = core.NPM
	baseCfg.CollectTrace = false
	if !worst {
		baseCfg.Sampler = exectime.NewSampler(exectime.NewSource(seed))
	}
	base, err := plan.Run(baseCfg)
	if err != nil {
		return err
	}
	fmt.Printf("vs NPM      : %.4f (NPM total %.4gJ)\n", res.Energy()/base.Energy(), base.Energy())

	if trace {
		fmt.Println("\nschedule:")
		fmt.Print(sim.Gantt(plat, res.Trace))
		fmt.Println()
		fmt.Print(sim.Timeline(res.Trace, deadline, 100))
	}
	if svgPath != "" {
		if err := os.WriteFile(svgPath, []byte(sim.SVG(plat, res.Trace, deadline)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", svgPath)
	}
	if chromePath != "" {
		data, err := sim.ChromeTrace(plat, res.Trace)
		if err != nil {
			return err
		}
		if err := os.WriteFile(chromePath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (open in chrome://tracing)\n", chromePath)
	}
	return nil
}
