package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	data := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			break
		}
	}
	return string(data), runErr
}

func TestRunSingle(t *testing.T) {
	out, err := capture(t, func() error {
		return run("synthetic", "transmeta", 2, "GSS", 0.5, 0, 42,
			false, false, false, 0, "", 0, "", "", 5, 600, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"application", "deadline met: true", "vs NPM", "residency"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceAndExports(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "s.svg")
	chrome := filepath.Join(dir, "t.json")
	out, err := capture(t, func() error {
		return run("atr", "xscale", 2, "AS", 0.6, 0, 1,
			false, true, true, 0, "", 0, svg, chrome, 5, 600, 50)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"off-line plan", "schedule:", "legend:", "wrote"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, f := range []string{svg, chrome} {
		if st, err := os.Stat(f); err != nil || st.Size() == 0 {
			t.Errorf("export %s missing or empty", f)
		}
	}
}

func TestRunStreamMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run("synthetic", "transmeta", 2, "SS2", 0.7, 0, 9,
			false, false, false, 50, "", 0, "", "", 5, 600, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "over 50 frames") || !strings.Contains(out, "0 misses") {
		t.Errorf("stream output wrong:\n%s", out)
	}
}

func TestRunCompareMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run("atr", "transmeta", 2, "GSS", 0.6, 0, 5,
			false, false, false, 0, "AS,GSS", 60, "", "", 5, 600, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "paired comparison") || !strings.Contains(out, "verdict") {
		t.Errorf("compare output wrong:\n%s", out)
	}
}

func TestRunErrorsMain(t *testing.T) {
	cases := []func() error{
		func() error {
			return run("bogus", "transmeta", 2, "GSS", 0.5, 0, 1, false, false, false, 0, "", 0, "", "", 5, 600, 0)
		},
		func() error {
			return run("synthetic", "bogus", 2, "GSS", 0.5, 0, 1, false, false, false, 0, "", 0, "", "", 5, 600, 0)
		},
		func() error {
			return run("synthetic", "transmeta", 2, "BOGUS", 0.5, 0, 1, false, false, false, 0, "", 0, "", "", 5, 600, 0)
		},
		func() error { // bad load
			return run("synthetic", "transmeta", 2, "GSS", 1.5, 0, 1, false, false, false, 0, "", 0, "", "", 5, 600, 0)
		},
		func() error { // malformed compare
			return run("synthetic", "transmeta", 2, "GSS", 0.5, 0, 1, false, false, false, 0, "onlyone", 10, "", "", 5, 600, 0)
		},
	}
	for i, f := range cases {
		if _, err := capture(t, f); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
