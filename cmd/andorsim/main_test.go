package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	data := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			break
		}
	}
	return string(data), runErr
}

// base returns the default options the flag definitions establish.
func base() options {
	return options{
		workload: "synthetic", platform: "transmeta", procs: 2,
		scheme: "GSS", load: 0.5, seed: 42, runs: 500,
		changeUs: 5, compCycles: 600,
	}
}

func TestRunSingle(t *testing.T) {
	out, err := capture(t, func() error { return run(base()) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"application", "deadline met: true", "vs NPM", "residency"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceAndExports(t *testing.T) {
	dir := t.TempDir()
	o := base()
	o.workload, o.platform, o.scheme = "atr", "xscale", "AS"
	o.load, o.seed, o.slewUsPerV = 0.6, 1, 50
	o.trace, o.printPlan = true, true
	o.svgPath = filepath.Join(dir, "s.svg")
	o.chromePath = filepath.Join(dir, "t.json")
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"off-line plan", "schedule:", "legend:", "wrote"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, f := range []string{o.svgPath, o.chromePath} {
		if st, err := os.Stat(f); err != nil || st.Size() == 0 {
			t.Errorf("export %s missing or empty", f)
		}
	}
}

// TestRunObservability exercises -stats, -trace-out and -events-out: the
// acceptance path of the observability layer through the CLI.
func TestRunObservability(t *testing.T) {
	dir := t.TempDir()
	o := base()
	o.scheme, o.load, o.seed = "AS", 0.6, 7
	o.stats = true
	o.traceOut = filepath.Join(dir, "trace.json")
	o.eventsOut = filepath.Join(dir, "events.ndjson")
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"per-processor stats:", "util", "speed-changes",
		"counters:", "sim.tasks.dispatched", "histogram sim.task.exec_seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The Chrome trace must parse and cover executed tasks.
	data, err := os.ReadFile(o.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace-out is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace-out has no events")
	}

	ndjson, err := os.ReadFile(o.eventsOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(ndjson)), "\n")
	if len(lines) < 10 {
		t.Fatalf("events-out suspiciously short: %d lines", len(lines))
	}
	for _, ln := range lines {
		var e map[string]any
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", ln, err)
		}
		if _, ok := e["kind"]; !ok {
			t.Fatalf("NDJSON line missing kind: %q", ln)
		}
	}
}

func TestRunStreamMode(t *testing.T) {
	o := base()
	o.scheme, o.load, o.seed, o.stream = "SS2", 0.7, 9, 50
	o.stats = true
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "over 50 frames") || !strings.Contains(out, "0 misses") {
		t.Errorf("stream output wrong:\n%s", out)
	}
	if !strings.Contains(out, "per-processor stats:") {
		t.Errorf("stream -stats output missing:\n%s", out)
	}
}

func TestRunCompareMode(t *testing.T) {
	o := base()
	o.workload, o.scheme, o.load, o.seed = "atr", "GSS", 0.6, 5
	o.compare, o.runs = "AS,GSS", 60
	out, err := capture(t, func() error { return run(o) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "paired comparison") || !strings.Contains(out, "verdict") {
		t.Errorf("compare output wrong:\n%s", out)
	}
}

func TestRunErrorsMain(t *testing.T) {
	bogusWorkload := base()
	bogusWorkload.workload = "bogus"
	bogusPlatform := base()
	bogusPlatform.platform = "bogus"
	bogusScheme := base()
	bogusScheme.scheme = "BOGUS"
	badLoad := base()
	badLoad.load = 1.5
	badCompare := base()
	badCompare.compare = "onlyone"
	badCompare.runs = 10
	for i, o := range []options{bogusWorkload, bogusPlatform, bogusScheme, badLoad, badCompare} {
		o := o
		if _, err := capture(t, func() error { return run(o) }); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
