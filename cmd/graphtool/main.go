// Command graphtool inspects AND/OR application graphs: validation,
// structural statistics, program-section decomposition, execution-path
// enumeration, and export to Graphviz DOT or JSON.
//
// Examples:
//
//	graphtool -workload synthetic -stats -paths
//	graphtool -workload atr -dot > atr.dot
//	graphtool -workload random:9 -json > app.json
//	graphtool -workload app.json -sections
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"andorsched/internal/andor"
	"andorsched/internal/cli"
	"andorsched/internal/obs"
)

func main() {
	var (
		workloadF = flag.String("workload", "synthetic", "application: atr, synthetic, random[:seed], or a .json graph file")
		statsF    = flag.Bool("stats", false, "print node/edge/section statistics")
		sectionsF = flag.Bool("sections", false, "print the program-section decomposition")
		pathsF    = flag.Bool("paths", false, "enumerate execution paths with probabilities and work sums")
		dotF      = flag.Bool("dot", false, "write Graphviz DOT to stdout")
		jsonF     = flag.Bool("json", false, "write the graph as JSON to stdout")
		andorF    = flag.Bool("andor", false, "write the graph in the .andor text format to stdout")
		svgF      = flag.Bool("svg", false, "write the graph as a self-contained SVG drawing to stdout")
		metricsF  = flag.Bool("metrics", false, "print detailed structural metrics")
		limitF    = flag.Int("path-limit", 1000, "maximum paths to enumerate")
		profile   obs.Profile
	)
	profile.RegisterFlags(flag.CommandLine, "trace")
	flag.Parse()

	var sess *obs.Session
	if profile.Enabled() {
		var err error
		sess, err = profile.Start()
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphtool:", err)
			os.Exit(1)
		}
	}
	runErr := run(*workloadF, *statsF, *sectionsF, *pathsF, *dotF, *jsonF, *andorF, *svgF, *metricsF, *limitF)
	if sess != nil {
		if err := sess.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "graphtool: profiling:", err)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "graphtool:", runErr)
		os.Exit(1)
	}
}

func run(spec string, stats, sections, paths, dot, asJSON, asAndor, asSVG, metrics bool, limit int) error {
	g, err := cli.ParseWorkload(spec)
	if err != nil {
		return err
	}
	if err := g.Validate(); err != nil {
		return err
	}
	if dot {
		fmt.Print(g.DOT())
		return nil
	}
	if asJSON {
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	if asAndor {
		fmt.Print(andor.FormatText(g))
		return nil
	}
	if asSVG {
		fmt.Print(g.SVG())
		return nil
	}
	if metrics {
		m, err := andor.ComputeMetrics(g)
		if err != nil {
			return err
		}
		fmt.Printf("graph                 : %s\n", g.Name)
		fmt.Printf("tasks/and/or/edges    : %d / %d / %d / %d\n", m.Tasks, m.AndNodes, m.OrNodes, m.Edges)
		fmt.Printf("total WCET / ACET     : %.3fms / %.3fms (mean α %.3f)\n",
			m.TotalWCET*1e3, m.TotalACET*1e3, m.MeanAlpha)
		fmt.Printf("critical path         : %.3fms (structural parallelism %.2f)\n",
			m.CriticalPathWCET*1e3, m.StructuralParallelism)
		fmt.Printf("expected work per run : %.3fms (probability-weighted over paths)\n", m.ExpectedWork*1e3)
		fmt.Printf("sections / paths      : %d / %d (largest section %d nodes)\n",
			m.Sections, m.Paths, m.MaxSectionTasks)
		fmt.Printf("depth                 : %d nodes\n", m.Depth)
		return nil
	}
	if !stats && !sections && !paths {
		stats = true // default action
	}

	secs, err := andor.Decompose(g)
	if err != nil {
		return err
	}
	if stats {
		var tasks, ands, ors, edges int
		for _, n := range g.Nodes() {
			edges += len(n.Succs())
			switch n.Kind {
			case andor.Compute:
				tasks++
			case andor.And:
				ands++
			case andor.Or:
				ors++
			}
		}
		fmt.Printf("graph      : %s (valid)\n", g.Name)
		fmt.Printf("nodes      : %d tasks, %d AND, %d OR; %d edges\n", tasks, ands, ors, edges)
		fmt.Printf("work       : total WCET %.3fms, total ACET %.3fms, structural critical path %.3fms\n",
			g.TotalWCET()*1e3, g.TotalACET()*1e3, g.CriticalPathWCET()*1e3)
		fmt.Printf("sections   : %d\n", len(secs.All))
		fmt.Printf("paths      : %d\n", secs.NumPaths())
	}
	if sections {
		for _, s := range secs.All {
			exit := "END"
			if s.Exit != nil {
				exit = s.Exit.Name
			}
			fmt.Printf("section %-3d: %2d nodes, WCET %.3fms, ACET %.3fms, exit %s\n",
				s.ID, len(s.Nodes), s.WCETSum()*1e3, s.ACETSum()*1e3, exit)
			for _, n := range s.Nodes {
				fmt.Printf("             %s\n", n)
			}
		}
	}
	if paths {
		ps, err := secs.Paths(limit)
		if err != nil {
			return err
		}
		for i, p := range ps {
			fmt.Printf("path %-3d p=%-8.4g WCET %.3fms ACET %.3fms  %s\n",
				i, p.Prob, p.WCETSum()*1e3, p.ACETSum()*1e3, p)
		}
	}
	return nil
}
