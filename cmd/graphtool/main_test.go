package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := f()
	w.Close()
	os.Stdout = old
	data := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			break
		}
	}
	return string(data), runErr
}

func TestStatsDefault(t *testing.T) {
	out, err := capture(t, func() error {
		return run("synthetic", false, false, false, false, false, false, false, false, 100)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"synthetic-fig3", "sections   : 11", "paths      : 16"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q:\n%s", want, out)
		}
	}
}

func TestSectionsAndPaths(t *testing.T) {
	out, err := capture(t, func() error {
		return run("atr", false, true, true, false, false, false, false, false, 100)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "section 0") || !strings.Contains(out, "path 0") {
		t.Errorf("sections/paths output wrong:\n%s", out)
	}
}

func TestExports(t *testing.T) {
	dot, err := capture(t, func() error {
		return run("synthetic", false, false, false, true, false, false, false, false, 100)
	})
	if err != nil || !strings.Contains(dot, "digraph") {
		t.Errorf("dot export wrong: %v", err)
	}
	js, err := capture(t, func() error {
		return run("synthetic", false, false, false, false, true, false, false, false, 100)
	})
	if err != nil || !strings.Contains(js, `"kind": "compute"`) {
		t.Errorf("json export wrong: %v", err)
	}
	ao, err := capture(t, func() error {
		return run("synthetic", false, false, false, false, false, true, false, false, 100)
	})
	if err != nil || !strings.Contains(ao, "app synthetic-fig3") {
		t.Errorf("andor export wrong: %v", err)
	}
	me, err := capture(t, func() error {
		return run("synthetic", false, false, false, false, false, false, false, true, 100)
	})
	if err != nil || !strings.Contains(me, "structural parallelism") {
		t.Errorf("metrics output wrong: %v\n%s", err, me)
	}
}

func TestPathLimit(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("synthetic", false, false, true, false, false, false, false, false, 2)
	}); err == nil {
		t.Error("want path-limit error")
	}
}

func TestBadWorkload(t *testing.T) {
	if _, err := capture(t, func() error {
		return run("bogus", true, false, false, false, false, false, false, false, 100)
	}); err == nil {
		t.Error("want workload error")
	}
}

func TestSVGExport(t *testing.T) {
	out, err := capture(t, func() error {
		return run("synthetic", false, false, false, false, false, false, true, false, 100)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "rect", "ellipse", "polygon", "30%"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG export missing %q", want)
		}
	}
}
