// Command andorload is a closed-loop load generator for andord. A fixed
// set of workers POSTs run requests back to back (optionally paced to a
// target rate), mixing schemes across requests, and reports throughput,
// outcome counts and latency percentiles.
//
// Usage:
//
//	andorload -base http://localhost:8080 [-workload atr] [-schemes GSS,AS]
//	          [-runs 1] [-load 0.5] [-n 1000 | -duration 30s] [-c 8] [-rps 0]
//	          [-batch 0] [-api-key KEY] [-trace]
//
// With -batch N each request targets /v1/batch and carries N items (the
// scheme mix cycles within the batch); -api-key sets the X-API-Key header
// identifying this generator as one tenant to a rate-limited server.
//
// With -trace every request carries a W3C traceparent so the server's
// flight recorder retains it under a known ID; after the run andorload
// fetches the slowest request's trace from /debug/requests/{id} and
// prints its per-phase breakdown — where the tail latency actually went
// (queued? compiling? simulating?) instead of a bare number.
//
// The exit status is non-zero when any request failed outright or was
// accepted and then dropped (incomplete stream) — 429 rejections are
// counted but are correct backpressure, not failures.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"andorsched/internal/loadgen"
	"andorsched/internal/obs"
)

func main() {
	base := flag.String("base", "http://localhost:8080", "server base URL")
	workloadName := flag.String("workload", "atr", "built-in workload: atr, synthetic or random[:seed]")
	schemesFlag := flag.String("schemes", "NPM,SPM,GSS,SS1,SS2,AS,CLV,ASP,ORA",
		"comma-separated schemes, cycled across requests")
	runs := flag.Int("runs", 1, "Monte-Carlo runs per request (>1 streams NDJSON)")
	loadFactor := flag.Float64("load", 0.5, "system load CT_worst/D")
	n := flag.Int("n", 0, "total requests (0 = use -duration)")
	duration := flag.Duration("duration", 10*time.Second, "run duration when -n is 0")
	conc := flag.Int("c", 8, "concurrent closed-loop workers")
	rps := flag.Float64("rps", 0, "target aggregate request rate (0 = unthrottled)")
	procs := flag.Int("procs", 2, "processors m in each request")
	batch := flag.Int("batch", 0, "items per request; >0 targets /v1/batch instead of /v1/run")
	chunks := flag.Int("chunks", 0,
		"per-request chunk count for /v1/run (0 = server auto, 1 = force serial)")
	apiKey := flag.String("api-key", "", "X-API-Key header value (tenant identity)")
	trace := flag.Bool("trace", false,
		"send traceparent headers and print the slowest request's phase breakdown")
	flag.Parse()

	schemes := strings.Split(*schemesFlag, ",")
	item := func(seed int, scheme string) string {
		chunkField := ""
		if *chunks > 0 {
			chunkField = fmt.Sprintf(`,"chunks":%d`, *chunks)
		}
		return fmt.Sprintf(
			`{"workload":%q,"scheme":%q,"runs":%d,"load":%g,"procs":%d,"seed":%d%s}`,
			*workloadName, strings.TrimSpace(scheme), *runs, *loadFactor, *procs, seed, chunkField)
	}
	body := func(i int) []byte {
		return []byte(item(i, schemes[i%len(schemes)]))
	}
	path := "/v1/run"
	if *batch > 0 {
		path = "/v1/batch"
		body = func(i int) []byte {
			var b strings.Builder
			b.WriteString(`{"items":[`)
			for j := 0; j < *batch; j++ {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(item(i**batch+j, schemes[j%len(schemes)]))
			}
			b.WriteString(`]}`)
			return []byte(b.String())
		}
	}

	cfg := loadgen.Config{
		URL:         strings.TrimRight(*base, "/") + path,
		Body:        body,
		Concurrency: *conc,
		Requests:    *n,
		RPS:         *rps,
		Trace:       *trace,
	}
	if *n == 0 {
		cfg.Duration = *duration
	}
	if *apiKey != "" {
		cfg.Header = http.Header{}
		cfg.Header.Set("X-API-Key", *apiKey)
	}

	fmt.Printf("andorload: %s workload=%s schemes=%s runs=%d c=%d",
		cfg.URL, *workloadName, *schemesFlag, *runs, *conc)
	if *batch > 0 {
		fmt.Printf(" batch=%d", *batch)
	}
	if *chunks > 0 {
		fmt.Printf(" chunks=%d", *chunks)
	}
	if *rps > 0 {
		fmt.Printf(" rps=%g", *rps)
	}
	fmt.Println()

	res, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "andorload: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(res)
	if *trace && res.SlowestTraceID != "" {
		printTrace(strings.TrimRight(*base, "/"), res.SlowestTraceID)
	}
	if res.Failed > 0 || res.Incomplete > 0 {
		os.Exit(1)
	}
}

// printTrace fetches one trace from the server's flight recorder and
// prints its phase breakdown. Failures are reported but not fatal: the
// ring may have evicted the trace on a busy server, and the load run's
// own verdict already stands.
func printTrace(base, id string) {
	resp, err := http.Get(base + "/debug/requests/" + id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "andorload: fetch trace %s: %v\n", id, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "andorload: trace %s not retained (status %d)\n", id, resp.StatusCode)
		return
	}
	var rt obs.RequestTrace
	if err := json.NewDecoder(resp.Body).Decode(&rt); err != nil {
		fmt.Fprintf(os.Stderr, "andorload: decode trace %s: %v\n", id, err)
		return
	}
	fmt.Printf("\nslowest request %s  %s  status %d  %.3fms total\n",
		rt.Endpoint, rt.TraceID, rt.Status, rt.DurationUS/1e3)
	for _, sp := range rt.Spans {
		line := fmt.Sprintf("  %-10s %9.3fms  (at +%.3fms", sp.Phase, sp.DurUS/1e3, sp.StartUS/1e3)
		if sp.Detail != "" {
			line += fmt.Sprintf(", %s", sp.Detail)
		}
		if sp.N > 0 {
			line += fmt.Sprintf(", n=%d", sp.N)
		}
		fmt.Println(line + ")")
	}
	fmt.Printf("  full trace: GET %s/debug/requests/%s?format=chrome\n", base, rt.TraceID)
}
