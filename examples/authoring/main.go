// Authoring example: the workflow for bringing your own application to the
// scheduler — parse an .andor text description, inspect its structure,
// check schedulability (how many processors the deadline needs), and
// compare schemes with a statistically honest paired test.
//
//	go run ./examples/authoring
package main

import (
	"fmt"
	"log"
	"os"

	"andorsched/internal/andor"
	"andorsched/internal/core"
	"andorsched/internal/experiments"
	"andorsched/internal/power"
)

func main() {
	src, err := os.ReadFile("workloads/videopipe.andor")
	if err != nil {
		log.Fatal(err, " (run from the repository root)")
	}
	g, err := andor.ParseText(string(src))
	if err != nil {
		log.Fatal(err)
	}

	m, err := andor.ComputeMetrics(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d tasks, %d OR nodes, %d execution paths\n",
		g.Name, m.Tasks, m.OrNodes, m.Paths)
	fmt.Printf("expected work per frame %.1fms (worst-case critical path %.1fms)\n\n",
		m.ExpectedWork*1e3, m.CriticalPathWCET*1e3)

	// How many processors does a 50ms frame deadline need?
	plat := power.IntelXScale()
	const deadline = 50e-3
	procs, plan, err := core.MinFeasibleProcs(g, plat, power.DefaultOverheads(), deadline, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a %.0fms deadline needs %d × %s (canonical worst case %.2fms, load %.2f)\n\n",
		deadline*1e3, procs, plat.Name, plan.CTWorst*1e3, plan.CTWorst/deadline)

	// Is adaptive speculation worth it over plain greedy here? Paired test
	// on identical frames.
	cmp, err := experiments.CompareSchemes(plan, core.AS, core.GSS, deadline, 800, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AS vs GSS over %d frames: ΔE = %+.4f ±%.4f (normalized), z = %.1f\n",
		cmp.Runs, cmp.MeanDiff, cmp.CI95, cmp.Z)
	if !cmp.Significant {
		fmt.Println("→ no significant difference on this workload; greedy is enough")
	} else if cmp.MeanDiff < 0 {
		fmt.Println("→ adaptive speculation saves significantly more energy here")
	} else {
		fmt.Println("→ greedy saves significantly more energy here")
	}

	// Render the graph for documentation.
	if err := os.WriteFile("videopipe.svg", []byte(g.SVG()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote videopipe.svg (the application graph as a drawing)")
}
