// ATR example: the automated target recognition application that motivates
// the paper's AND/OR model. The number of regions of interest per frame
// varies, so whole subgraphs are skipped at run time; this example shows
// how much energy each scheme recovers from that path slack, per processor
// count, over a stream of frames.
//
//	go run ./examples/atr
package main

import (
	"fmt"
	"log"

	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/stats"
	"andorsched/internal/workload"
)

func main() {
	cfg := workload.DefaultATRConfig()
	g := workload.ATR(cfg)
	fmt.Printf("ATR: up to %d ROIs (probabilities %v), %d templates per ROI, α = %.1f\n",
		cfg.MaxROIs, cfg.ROIProbs, cfg.Templates, cfg.Alpha)
	fmt.Printf("graph: %d nodes, %d computation tasks\n\n", g.Len(), len(g.ComputeNodes()))

	const (
		frames = 500
		load   = 0.5
		seed   = 2002
	)
	plat := power.Transmeta5400()

	for _, procs := range []int{2, 4, 6} {
		plan, err := core.NewPlan(g, procs, plat, power.DefaultOverheads())
		if err != nil {
			log.Fatal(err)
		}
		deadline := plan.CTWorst / load
		fmt.Printf("%d × %s, frame deadline %.2fms (load %.1f), %d frames:\n",
			procs, plat.Name, deadline*1e3, load, frames)

		for _, s := range core.Schemes {
			var norm, chg stats.Acc
			master := exectime.NewSource(seed)
			for f := 0; f < frames; f++ {
				frameSeed := master.Uint64()
				base, err := plan.Run(core.RunConfig{
					Scheme: core.NPM, Deadline: deadline,
					Sampler: exectime.NewSampler(exectime.NewSource(frameSeed)),
				})
				if err != nil {
					log.Fatal(err)
				}
				res, err := plan.Run(core.RunConfig{
					Scheme: s, Deadline: deadline,
					Sampler: exectime.NewSampler(exectime.NewSource(frameSeed)),
				})
				if err != nil {
					log.Fatal(err)
				}
				if !res.MetDeadline {
					log.Fatalf("%s missed a frame deadline — must not happen", s)
				}
				norm.Add(res.Energy() / base.Energy())
				chg.Add(float64(res.SpeedChanges))
			}
			fmt.Printf("  %-3s  energy vs NPM %.4f ±%.4f   speed changes/frame %5.1f\n",
				s, norm.Mean(), norm.CI95(), chg.Mean())
		}
		fmt.Println()
	}
	fmt.Println("note how the dynamic schemes lose ground as processors are added:")
	fmt.Println("limited parallelism forces idleness at the synchronization points (§5).")
}
