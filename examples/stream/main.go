// Stream example: the deployment the paper motivates — a periodic video
// stream processed by the ATR application, one frame per period. Compares
// the schemes over a long stream, including the clairvoyant single-speed
// bound, and shows the speed residency profile that explains where each
// scheme spends its time.
//
//	go run ./examples/stream
package main

import (
	"fmt"
	"log"

	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

func main() {
	plat := power.Transmeta5400()
	plan, err := core.NewPlan(workload.ATR(workload.DefaultATRConfig()), 2, plat, power.DefaultOverheads())
	if err != nil {
		log.Fatal(err)
	}

	const frames = 2000
	period := plan.CTWorst / 0.6 // 60% load
	fmt.Printf("ATR video stream: %d frames, period %.2fms (load 0.6), 2 × %s\n\n",
		frames, period*1e3, plat.Name)
	fmt.Printf("%-5s %12s %10s %8s %10s %10s\n",
		"", "energy (J)", "vs NPM", "misses", "changes", "avg finish")

	var npmEnergy float64
	schemes := append(append([]core.Scheme(nil), core.Schemes...), core.ExtendedSchemes...)
	for _, s := range schemes {
		res, err := plan.RunStream(core.StreamConfig{
			Scheme: s, Period: period, Frames: frames,
			Sampler:     exectime.NewSampler(exectime.NewSource(77)),
			CarryLevels: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if s == core.NPM {
			npmEnergy = res.Energy()
		}
		fmt.Printf("%-5s %12.4f %10.4f %8d %10d %8.2fms\n",
			s, res.Energy(), res.Energy()/npmEnergy, res.DeadlineMisses,
			res.SpeedChanges, res.FinishStats.Mean()*1e3)
	}

	// Residency: where does GSS actually run?
	res, err := plan.RunStream(core.StreamConfig{
		Scheme: core.GSS, Period: period, Frames: frames,
		Sampler:     exectime.NewSampler(exectime.NewSource(77)),
		CarryLevels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	var busy float64
	for _, v := range res.LevelTime {
		busy += v
	}
	fmt.Printf("\nGSS speed residency over the stream:\n")
	for i, v := range res.LevelTime {
		if v == 0 {
			continue
		}
		bar := ""
		for j := 0; j < int(60*v/busy+0.5); j++ {
			bar += "█"
		}
		fmt.Printf("  %4.0fMHz %6.2f%% %s\n", plat.Levels()[i].Freq/1e6, 100*v/busy, bar)
	}
	fmt.Println("\nCLV is the single-speed oracle with perfect knowledge of every")
	fmt.Println("frame; the gap between it and the schemes is what better")
	fmt.Println("speculation could still recover (§3.3).")
}
