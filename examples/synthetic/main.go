// Synthetic example: the paper's Figure 3 application, demonstrating the
// effect of α (average-case over worst-case execution time) on each
// scheme's energy — a reduced-resolution version of Figure 6 with live
// commentary, plus an inspection of the application's execution paths.
//
//	go run ./examples/synthetic
package main

import (
	"fmt"
	"log"

	"andorsched/internal/andor"
	"andorsched/internal/core"
	"andorsched/internal/experiments"
	"andorsched/internal/power"
	"andorsched/internal/workload"
)

func main() {
	g := workload.Synthetic()
	fmt.Printf("synthetic application (paper Figure 3): %d nodes\n", g.Len())

	secs, err := andor.Decompose(g)
	if err != nil {
		log.Fatal(err)
	}
	paths, err := secs.Paths(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d program sections, %d execution paths:\n", len(secs.All), len(paths))
	for i, p := range paths {
		fmt.Printf("  path %2d  p=%6.4f  worst %5.1fms  avg %5.1fms\n",
			i, p.Prob, p.WCETSum()*1e3, p.ACETSum()*1e3)
	}

	fmt.Printf("\nnormalized energy vs α on 2 × Intel XScale at load %.1f (%d runs/point):\n\n",
		experiments.Fig6Load, 200)
	se, err := experiments.EnergyVsAlpha(experiments.Config{
		Graph:     g,
		Procs:     2,
		Platform:  power.IntelXScale(),
		Overheads: power.DefaultOverheads(),
		Schemes:   []core.Scheme{core.SPM, core.GSS, core.SS1, core.SS2, core.AS},
		Runs:      200,
		Seed:      6,
	}, experiments.Fig6Load, []float64{0.2, 0.4, 0.6, 0.8, 1.0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(se.Table())
	fmt.Println("SPM barely moves with α (it only uses static slack), while the")
	fmt.Println("dynamic schemes are best at moderate α: at low α dynamic slack is")
	fmt.Println("plentiful but capped by f_min; at α = 1 only path slack remains (§5).")
}
