// Quickstart: build a small AND/OR application with the public API,
// run the off-line phase, execute it once under greedy slack sharing and
// print the schedule and energy figures.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"andorsched/internal/andor"
	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/power"
	"andorsched/internal/sim"
)

func main() {
	// 1. Describe the application: an AND/OR graph. Times are seconds at
	// maximum processor speed (WCET / ACET). This is the paper's Figure 1
	// combined: an AND-parallel stage followed by an OR choice.
	g := andor.NewGraph("quickstart")
	a := g.AddTask("A", 8e-3, 5e-3)
	fork := g.AddAnd("fork")
	b := g.AddTask("B", 5e-3, 3e-3)
	c := g.AddTask("C", 4e-3, 2e-3)
	join := g.AddAnd("join")
	g.AddEdge(a, fork)
	g.AddEdge(fork, b)
	g.AddEdge(fork, c)
	g.AddEdge(b, join)
	g.AddEdge(c, join)

	// An OR node: 30% of the frames take the expensive analysis path.
	or := g.AddOr("branch")
	g.AddEdge(join, or)
	deep := g.AddTask("Deep", 8e-3, 6e-3)
	quick := g.AddTask("Quick", 5e-3, 3e-3)
	g.AddEdge(or, deep)
	g.AddEdge(or, quick)
	g.SetBranchProbs(or, 0.30, 0.70)
	done := g.AddOr("done")
	g.AddEdge(deep, done)
	g.AddEdge(quick, done)
	report := g.AddTask("Report", 2e-3, 1e-3)
	g.AddEdge(done, report)

	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	// 2. Off-line phase: canonical schedules, shifting, latest start times
	// — on 2 Transmeta TM5400 processors with the paper's overheads.
	plan, err := core.NewPlan(g, 2, power.Transmeta5400(), power.DefaultOverheads())
	if err != nil {
		log.Fatal(err)
	}
	deadline := plan.CTWorst / 0.5 // run the system at 50% load
	fmt.Printf("canonical worst case %.2fms, average %.2fms, deadline %.2fms\n",
		plan.CTWorst*1e3, plan.CTAvg*1e3, deadline*1e3)

	// 3. On-line phase: one frame under greedy slack sharing.
	res, err := plan.Run(core.RunConfig{
		Scheme:       core.GSS,
		Deadline:     deadline,
		Sampler:      exectime.NewSampler(exectime.NewSource(7)),
		CollectTrace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finished %.2fms before the deadline, %d speed changes\n",
		(deadline-res.Finish)*1e3, res.SpeedChanges)
	fmt.Printf("energy %.4gJ (active %.4g + overhead %.4g + idle %.4g)\n\n",
		res.Energy(), res.ActiveEnergy, res.OverheadEnergy, res.IdleEnergy)
	fmt.Print(sim.Gantt(plan.Platform, res.Trace))

	// 4. Compare all schemes on the same frame (same seed = same actual
	// times and branch outcome).
	fmt.Println("\nscheme comparison (same frame):")
	for _, s := range core.Schemes {
		r, err := plan.Run(core.RunConfig{
			Scheme:   s,
			Deadline: deadline,
			Sampler:  exectime.NewSampler(exectime.NewSource(7)),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-3s  finish %6.2fms  energy %.4gJ  changes %d\n",
			s, r.Finish*1e3, r.Energy(), r.SpeedChanges)
	}
}
