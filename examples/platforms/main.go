// Platforms example: how the processor's voltage/frequency table shapes
// power-aware scheduling. Prints the paper's Tables 1 and 2, then runs the
// same workload on Transmeta (16 fine-grained levels), XScale (5 coarse
// levels with a high f_min) and two synthetic platforms, showing the
// paper's conclusion that the greedy scheme benefits from a reasonable
// minimal speed and few levels.
//
//	go run ./examples/platforms
package main

import (
	"fmt"
	"log"

	"andorsched/internal/core"
	"andorsched/internal/exectime"
	"andorsched/internal/experiments"
	"andorsched/internal/power"
	"andorsched/internal/stats"
	"andorsched/internal/workload"
)

func main() {
	fmt.Println(experiments.PlatformTable(power.Transmeta5400()))
	fmt.Println(experiments.PlatformTable(power.IntelXScale()))

	plats := []*power.Platform{
		power.Transmeta5400(),
		power.IntelXScale(),
		power.Synthetic(16, 70, 700, 0.8, 1.65), // low f_min, fine-grained
		power.Synthetic(3, 350, 700, 1.2, 1.65), // high f_min, coarse
	}
	g := workload.ATR(workload.DefaultATRConfig())
	const (
		runs = 300
		load = 0.6
	)
	fmt.Printf("ATR on 2 processors at load %.1f, %d runs, energy vs NPM:\n\n", load, runs)
	fmt.Printf("%-28s %8s %8s %8s\n", "platform", "GSS", "SS1", "AS")
	for _, plat := range plats {
		plan, err := core.NewPlan(g, 2, plat, power.DefaultOverheads())
		if err != nil {
			log.Fatal(err)
		}
		deadline := plan.CTWorst / load
		fmt.Printf("%-28s", plat.Name)
		for _, s := range []core.Scheme{core.GSS, core.SS1, core.AS} {
			var acc stats.Acc
			master := exectime.NewSource(11)
			for r := 0; r < runs; r++ {
				seed := master.Uint64()
				base, err := plan.Run(core.RunConfig{
					Scheme: core.NPM, Deadline: deadline,
					Sampler: exectime.NewSampler(exectime.NewSource(seed)),
				})
				if err != nil {
					log.Fatal(err)
				}
				res, err := plan.Run(core.RunConfig{
					Scheme: s, Deadline: deadline,
					Sampler: exectime.NewSampler(exectime.NewSource(seed)),
				})
				if err != nil {
					log.Fatal(err)
				}
				acc.Add(res.Energy() / base.Energy())
			}
			fmt.Printf(" %8.4f", acc.Mean())
		}
		fmt.Println()
	}
	fmt.Println("\na low f_min lets the greedy scheme overspend slack early (and lose);")
	fmt.Println("a high f_min and coarse levels act as built-in speculation (§5, §6).")
}
